package lockorder_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockorder"
)

func TestFlagsCyclesAndReacquisition(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "flag"), lockorder.Analyzer)
}

func TestAcceptsLayeredOrder(t *testing.T) {
	analysistest.RunClean(t, filepath.Join("testdata", "src", "ok"), lockorder.Analyzer)
}

func TestCrossPackageCycle(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "crosspkg"), lockorder.Analyzer)
}

func TestWaiverIsHonoredAndLoadBearing(t *testing.T) {
	dir := filepath.Join("testdata", "src", "waiver")
	analysistest.RunClean(t, dir, lockorder.Analyzer)

	pkg, err := analysis.LoadDir(dir, "fixture/waiver")
	if err != nil {
		t.Fatal(err)
	}
	diags := analysistest.Findings(t, pkg, lockorder.Analyzer, true)
	if len(diags) != 1 {
		t.Fatalf("IgnoreAnnotations should resurface the waived self-cycle, got %d diagnostics: %v", len(diags), diags)
	}
}
