// Multi-package fixture, package b: the lock and its acquire helper.
// Nothing here is a finding; this package only contributes summaries.
//
//llmdm:pkgpath fixture/b
package fixture

import "sync"

// B exposes its mutex so sibling packages can order against it.
type B struct{ Mu sync.Mutex }

// Acquire takes and releases B.Mu — the summary callers see.
func Acquire(b *B) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
}
