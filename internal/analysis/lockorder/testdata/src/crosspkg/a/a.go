// Multi-package fixture, package a: both witnesses live here, but the
// first edge's second leg is only visible through package b's function
// summary (fixb.Acquire's transitive acquires include B.Mu).
//
//llmdm:pkgpath fixture/a
package fixture

import (
	"sync"

	fixb "fixture/b"
)

type A struct{ mu sync.Mutex }

func lockA(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
}

// aThenB: A.mu held while calling into b, whose summary acquires B.Mu.
func aThenB(a *A, b *fixb.B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	fixb.Acquire(b) // want "lock-order cycle"
}

// bThenA: the opposite order — B.Mu held while a call chain takes A.mu.
func bThenA(a *A, b *fixb.B) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	lockA(a)
}
