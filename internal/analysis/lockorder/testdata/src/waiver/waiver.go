// Fixture: an //llmdm:allow lockorder annotation at the witness site
// accepts a deliberate ordering exception. The load-bearing test reruns
// this fixture with IgnoreAnnotations and expects the finding back.
package fixture

import "sync"

type A struct{ mu sync.Mutex }

func lockA(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
}

func reacquire(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
	//llmdm:allow lockorder fixture: documented recursive entry point
	lockA(a)
}
