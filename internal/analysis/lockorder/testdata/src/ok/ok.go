// Fixture: consistent lock layering is NOT a finding — only edges that
// close a loop are. Locals and unresolved receivers stay out of the
// global graph entirely.
package fixture

import "sync"

type Outer struct{ mu sync.Mutex }

type Inner struct{ mu sync.Mutex }

func lockInner(i *Inner) {
	i.mu.Lock()
	defer i.mu.Unlock()
}

// Every path takes Outer.mu before Inner.mu: a clean hierarchy.
func layered(o *Outer, i *Inner) {
	o.mu.Lock()
	defer o.mu.Unlock()
	lockInner(i)
}

func alsoLayered(o *Outer, i *Inner) {
	o.mu.Lock()
	i.mu.Lock()
	i.mu.Unlock()
	o.mu.Unlock()
}

// A lock on a local never enters the global graph.
func localLock() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}

// Sequential (non-nested) acquires create no edge.
func sequential(o *Outer, i *Inner) {
	o.mu.Lock()
	o.mu.Unlock()
	i.mu.Lock()
	i.mu.Unlock()
}
