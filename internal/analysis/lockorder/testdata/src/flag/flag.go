// Fixture: lock-order cycles and call-chain re-acquisition inside one
// package. The analyzer sees the second acquire through the callee's
// summary, not the caller's body — a per-function scanner cannot.
package fixture

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func lockB(b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
}

func lockA(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
}

// aThenB and bThenA acquire the two locks in opposite orders: a cycle.
func aThenB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockB(b) // want "lock-order cycle"
}

func bThenA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	lockA(a)
}

// reacquire calls back into a function that takes the lock the caller
// still holds: a single-goroutine self-deadlock.
func reacquire(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockA(a) // want "lock self-cycle"
}
