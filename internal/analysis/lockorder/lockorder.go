// Package lockorder checks the program's global lock-acquisition graph.
//
// lockscope (PR 5) keeps any single critical section honest inside one
// function; it cannot see that function A takes mu1 then calls into a
// function whose own body takes mu2, while function B takes mu2 then
// calls into one that takes mu1 — the classic cross-function deadlock
// that only shows up under load. lockorder closes that gap using the
// Program layer's function summaries:
//
//   - every AcquireSite contributes edges held-lock → acquired-lock for
//     each canonical lock already held at the acquire;
//   - every call made while holding a lock contributes edges
//     held-lock → k for every k in the callee's *transitive* acquire
//     set (memoized over the call graph, cycle-safe).
//
// Two shapes are diagnosed, each at its first witness site:
//
//   - a cycle in the graph (A → B and B → A, possibly through longer
//     chains): the locks can be taken in both orders, so two goroutines
//     can deadlock;
//   - a self-edge (A → A): a call chain that re-acquires a lock the
//     caller may still hold — sync.Mutex is not reentrant, so this is a
//     single-goroutine self-deadlock.
//
// Plain edges are *not* findings — layered registries legitimately
// acquire inner locks under outer ones. Only edges that close a loop
// are reported. Locks are identified by canonical key
// ("import/path.Type.field" for struct mutexes, "import/path.name" for
// package-level ones); locks on locals never enter the global graph.
//
// Escape hatch: //llmdm:allow lockorder <reason> on the witness line.
package lockorder

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockorder rule.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "the global lock-acquisition graph (built from function summaries: locks held at each " +
		"acquire and at each call, with callees' transitive acquires) must be cycle-free, and no " +
		"call chain may re-acquire a lock the caller still holds",
	Run: run,
}

// edge is one lock-order edge with its witness site.
type edge struct {
	from, to string
	pkg      *analysis.Package
	pos      analysis.Witness
	desc     string
}

// graph is the program-wide result, memoized in Prog.Stash so the
// per-package passes share one computation.
type graph struct {
	findings []finding
}

type finding struct {
	pkgPath string
	pos     analysis.Witness
	msg     string
}

func run(pass *analysis.Pass) error {
	g := buildGraph(pass.Prog)
	for _, f := range g.findings {
		if f.pkgPath != pass.Pkg.Path {
			continue
		}
		pass.Reportf(f.pos.Pos, "%s", f.msg)
	}
	return nil
}

const stashKey = "lockorder.graph"

func buildGraph(prog *analysis.Program) *graph {
	if g, ok := prog.Stash[stashKey].(*graph); ok {
		return g
	}
	var edges []edge
	prog.EachFunc(func(f *analysis.FuncInfo) {
		sum := prog.Summary(f)
		for _, a := range sum.Acquires {
			if a.Key == "" {
				continue
			}
			for _, h := range a.Held {
				if h == a.Key {
					continue // RLock→RLock etc. handled as call self-edges only
				}
				edges = append(edges, edge{
					from: h, to: a.Key, pkg: f.Pkg,
					pos:  analysis.Witness{Pos: a.Pos, Position: f.Pkg.Fset.Position(a.Pos)},
					desc: fmt.Sprintf("%s acquires %s while holding %s", f, short(a.Key), short(h)),
				})
			}
		}
		for _, c := range sum.Calls {
			if c.Callee == nil || len(c.Held) == 0 {
				continue
			}
			for k := range prog.TransitiveAcquires(c.Callee) {
				for _, h := range c.Held {
					edges = append(edges, edge{
						from: h, to: k, pkg: f.Pkg,
						pos: analysis.Witness{Pos: c.Pos, Position: f.Pkg.Fset.Position(c.Pos)},
						desc: fmt.Sprintf("%s calls %s while holding %s; the callee's call graph acquires %s",
							f, c.Expr, short(h), short(k)),
					})
				}
			}
		}
	})
	// Deterministic order: witness position, then edge identity.
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.pos.Position.Filename != b.pos.Position.Filename {
			return a.pos.Position.Filename < b.pos.Position.Filename
		}
		if a.pos.Position.Line != b.pos.Position.Line {
			return a.pos.Position.Line < b.pos.Position.Line
		}
		return a.from+"→"+a.to < b.from+"→"+b.to
	})

	adj := map[string]map[string]bool{}
	for _, e := range edges {
		if e.from == e.to {
			continue // self-edges diagnosed directly below
		}
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}

	g := &graph{}
	seen := map[string]bool{} // one report per unordered lock pair / self lock
	for _, e := range edges {
		if e.from == e.to {
			key := "self:" + e.from
			if seen[key] {
				continue
			}
			seen[key] = true
			g.findings = append(g.findings, finding{
				pkgPath: e.pkg.Path,
				pos:     e.pos,
				msg: fmt.Sprintf("lock self-cycle on %s: %s — sync mutexes are not reentrant, "+
					"so this call chain can self-deadlock; restructure or annotate //llmdm:allow lockorder",
					short(e.from), e.desc),
			})
			continue
		}
		if reachable(adj, e.to, e.from) {
			key := cycleKey(e.from, e.to)
			if seen[key] {
				continue
			}
			seen[key] = true
			g.findings = append(g.findings, finding{
				pkgPath: e.pkg.Path,
				pos:     e.pos,
				msg: fmt.Sprintf("lock-order cycle between %s and %s: %s, and another call path "+
					"acquires them in the opposite order — two goroutines can deadlock; pick one "+
					"global order or annotate //llmdm:allow lockorder",
					short(e.from), short(e.to), e.desc),
			})
		}
	}
	prog.Stash[stashKey] = g
	return g
}

// reachable reports whether from reaches to in the edge adjacency.
func reachable(adj map[string]map[string]bool, from, to string) bool {
	seen := map[string]bool{}
	stack := []string{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		for m := range adj[n] {
			stack = append(stack, m)
		}
	}
	return false
}

// cycleKey identifies the unordered pair so each two-lock cycle reports
// once even when witnessed from both directions.
func cycleKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return "cycle:" + a + "|" + b
}

// short trims the module prefix off a canonical lock key for messages.
func short(key string) string {
	key = strings.TrimPrefix(key, "repro/internal/")
	key = strings.TrimPrefix(key, "repro/")
	return key
}
