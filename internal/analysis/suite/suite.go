// Package suite bundles the project's five analyzers in the order
// cmd/llmdm-lint and the in-tree enforcement tests run them.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/billmeter"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/gospawn"
	"repro/internal/analysis/lockscope"
	"repro/internal/analysis/metricname"
)

// All returns the full analyzer suite.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		lockscope.Analyzer,
		billmeter.Analyzer,
		gospawn.Analyzer,
		metricname.Analyzer,
	}
}

// ByName resolves a comma-separable subset; unknown names return nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
