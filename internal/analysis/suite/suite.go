// Package suite bundles the project's eight analyzers in the order
// cmd/llmdm-lint and the in-tree enforcement tests run them: the five
// per-function analyzers from PR 5, then the three interprocedural ones
// built on the Program/summary layer.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/billmeter"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/goleak"
	"repro/internal/analysis/gospawn"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/lockscope"
	"repro/internal/analysis/metricname"
	"repro/internal/analysis/reslifecycle"
)

// All returns the full analyzer suite.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		lockscope.Analyzer,
		billmeter.Analyzer,
		gospawn.Analyzer,
		metricname.Analyzer,
		lockorder.Analyzer,
		reslifecycle.Analyzer,
		goleak.Analyzer,
	}
}

// ByName resolves a comma-separable subset; unknown names return nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
