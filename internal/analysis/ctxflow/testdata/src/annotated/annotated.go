// Fixture: deliberate detached roots carry //llmdm:detached — on the
// same line or the line above — and //llmdm:allow ctxflow also waives.
package fixture

import "context"

func detachedSameLine(timeout int) {
	ctx := context.Background() //llmdm:detached batch flush outlives any single submitter
	_ = ctx
	_ = timeout
}

func detachedLineAbove() {
	//llmdm:detached startup root for the warmup pass
	ctx := context.Background()
	_ = ctx
}

func allowWaiver() {
	_ = context.TODO() //llmdm:allow ctxflow migration shim, tracked separately
}
