// Fixture: accepted shapes for the dropped-ctx check — ctx actually
// threaded, an underscore parameter (interface conformance), a body
// with no blocking work, and an annotated deliberate sink.
package fixture

import (
	"context"
	"time"
)

func threads(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
}

func conformance(_ context.Context, n int) int {
	time.Sleep(time.Millisecond)
	return n * 2
}

func pureBookkeeping(ctx context.Context, m map[string]int) {
	m["calls"]++
}

//llmdm:allow ctxflow fixture: drain helper, bounded by the channel close
func deliberateSink(ctx context.Context, ch chan int) {
	for range ch {
		time.Sleep(time.Microsecond)
	}
}
