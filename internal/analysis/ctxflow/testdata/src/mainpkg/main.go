// Fixture: package main owns its context root — never reported.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
