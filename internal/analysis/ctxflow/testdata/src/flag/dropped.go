// Fixture: a function that accepts ctx, ignores it, and blocks has
// detached the caller's cancellation as surely as a fresh root.
package fixture

import (
	"context"
	"time"
)

func blockingSink(ctx context.Context, ch chan int) { // want "blockingSink accepts ctx but never threads it"
	time.Sleep(time.Millisecond)
	ch <- 1
}

// Ident aliases of the import count too.
func sendSink(reqCtx context.Context, ch chan int) { // want "sendSink accepts reqCtx but never threads it"
	ch <- 2
}
