// Fixture: fresh context roots in library code are reported, including
// under an import alias.
package fixture

import (
	"context"

	stdctx "context"
)

func freshRoot() error {
	ctx := context.Background() // want "context\.Background\(\) in library code"
	_ = ctx
	return nil
}

func lazyTODO() {
	_ = context.TODO() // want "context\.TODO\(\) in library code"
}

func aliased() {
	_ = stdctx.Background() // want "context\.Background\(\) in library code"
}

// Threading the caller's ctx is the accepted shape.
func threaded(ctx context.Context) context.Context {
	return ctx
}
