// Package ctxflow forbids minting fresh context roots in library code.
//
// Every serving-path operation must run under the caller's context so
// cancellation, deadlines, priority classes (sched.WithClass) and trace
// spans flow end to end. `context.Background()` or `context.TODO()` in a
// library function silently detaches all of that — the exact bug class
// that made internal/exper unkillable before this suite.
//
// Allowed: package main (a process owns its root), test files (excluded
// at load time), and sites annotated //llmdm:detached — deliberate
// detached roots such as the scheduler's batch-flush timeout, which must
// outlive any single submitter. Detached work that should inherit values
// (but not cancellation) must use context.WithoutCancel instead.
//
// The summary layer adds the dual check: a function that ACCEPTS a
// named ctx parameter but never references it, while its body provably
// blocks (a model call, channel op, sleep or HTTP round-trip in its
// summary), has detached the caller's cancellation just as surely as a
// fresh Background() — the deadline stops dead at its signature. Such
// functions are reported at the declaration; deliberate sinks annotate
// //llmdm:allow ctxflow (an underscore `_ context.Context` parameter —
// interface conformance — is always fine).
package ctxflow

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer is the ctxflow rule.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid context.Background()/context.TODO() outside package main and tests; " +
		"deliberate detached roots must be annotated //llmdm:detached " +
		"(or derive from the caller via context.WithoutCancel)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.IsMain() {
		return nil
	}
	pass.EachFile(func(name string, f *ast.File) {
		ctxNames := contextImportNames(f)
		if len(ctxNames) == 0 {
			return
		}
		analysis.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok || !ctxNames[pkgIdent.Name] {
				return true
			}
			if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
				return true
			}
			if pass.Detached(call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"context.%s() in library code: thread ctx from the caller, or annotate a deliberate detached root with //llmdm:detached",
				sel.Sel.Name)
			return true
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDroppedCtx(pass, f, ctxNames, fd)
		}
	})
	return nil
}

// checkDroppedCtx reports a function that takes a named ctx parameter,
// never references it, and whose summary proves the body blocks: the
// caller's cancellation dies at the signature.
func checkDroppedCtx(pass *analysis.Pass, f *ast.File, ctxNames map[string]bool, fd *ast.FuncDecl) {
	var ctxParams []string
	for _, p := range fd.Type.Params.List {
		if !isCtxType(ctxNames, p.Type) {
			continue
		}
		for _, name := range p.Names {
			if name.Name != "_" {
				ctxParams = append(ctxParams, name.Name)
			}
		}
	}
	if len(ctxParams) == 0 {
		return
	}
	for _, name := range ctxParams {
		if identUsed(fd.Body, name) {
			return
		}
	}
	fi := pass.Prog.FuncOf(pass.Pkg, fd)
	if fi == nil {
		return
	}
	sum := pass.Prog.Summary(fi)
	if sum == nil || len(sum.Blocking) == 0 {
		return
	}
	pass.Reportf(fd.Pos(),
		"%s accepts %s but never threads it past its blocking work (%s): the caller's cancellation and deadline stop dead here — pass the ctx down or annotate //llmdm:allow ctxflow",
		fd.Name.Name, ctxParams[0], sum.Blocking[0].What)
}

// isCtxType matches context.Context under any file-local import name.
func isCtxType(ctxNames map[string]bool, t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && ctxNames[id.Name]
}

// identUsed reports whether name is referenced anywhere in body other
// than as a declaration name.
func identUsed(body *ast.BlockStmt, name string) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			used = true
		}
		return !used
	})
	return used
}

// contextImportNames returns the local names under which f imports the
// context package (usually just "context", but aliases count too).
func contextImportNames(f *ast.File) map[string]bool {
	names := map[string]bool{}
	for _, imp := range f.Imports {
		if imp.Path.Value != `"context"` {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name != "_" && imp.Name.Name != "." {
				names[imp.Name.Name] = true
			}
			continue
		}
		names["context"] = true
	}
	return names
}
