// Package ctxflow forbids minting fresh context roots in library code.
//
// Every serving-path operation must run under the caller's context so
// cancellation, deadlines, priority classes (sched.WithClass) and trace
// spans flow end to end. `context.Background()` or `context.TODO()` in a
// library function silently detaches all of that — the exact bug class
// that made internal/exper unkillable before this suite.
//
// Allowed: package main (a process owns its root), test files (excluded
// at load time), and sites annotated //llmdm:detached — deliberate
// detached roots such as the scheduler's batch-flush timeout, which must
// outlive any single submitter. Detached work that should inherit values
// (but not cancellation) must use context.WithoutCancel instead.
package ctxflow

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer is the ctxflow rule.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid context.Background()/context.TODO() outside package main and tests; " +
		"deliberate detached roots must be annotated //llmdm:detached " +
		"(or derive from the caller via context.WithoutCancel)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.IsMain() {
		return nil
	}
	pass.EachFile(func(name string, f *ast.File) {
		ctxNames := contextImportNames(f)
		if len(ctxNames) == 0 {
			return
		}
		analysis.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok || !ctxNames[pkgIdent.Name] {
				return true
			}
			if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
				return true
			}
			if pass.Detached(call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"context.%s() in library code: thread ctx from the caller, or annotate a deliberate detached root with //llmdm:detached",
				sel.Sel.Name)
			return true
		})
	})
	return nil
}

// contextImportNames returns the local names under which f imports the
// context package (usually just "context", but aliases count too).
func contextImportNames(f *ast.File) map[string]bool {
	names := map[string]bool{}
	for _, imp := range f.Imports {
		if imp.Path.Value != `"context"` {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name != "_" && imp.Name.Name != "." {
				names[imp.Name.Name] = true
			}
			continue
		}
		names["context"] = true
	}
	return names
}
