package ctxflow_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxflow"
)

func TestFlagsFreshRoots(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "flag"), ctxflow.Analyzer)
}

func TestAcceptsAnnotatedDetachedRoots(t *testing.T) {
	analysistest.RunClean(t, filepath.Join("testdata", "src", "annotated"), ctxflow.Analyzer)
}

func TestSkipsPackageMain(t *testing.T) {
	analysistest.RunClean(t, filepath.Join("testdata", "src", "mainpkg"), ctxflow.Analyzer)
}
