// Function summaries: per-function facts computed once per Program and
// consumed by the interprocedural analyzers (lockorder, reslifecycle,
// goleak) and by the summary-sharpened per-function ones.
//
// A summary records, for one declaration body:
//
//   - Acquires: every mutex acquire with the canonical keys already
//     held at that point (branch-sensitive may-hold, the same model as
//     lockscope: cloned arm states, diverging arms discard releases,
//     deferred unlocks hold to function end);
//   - Calls: every call site with its may-held lock set and, when the
//     target resolves, the callee's FuncInfo — the call-graph edges;
//   - Blocking: direct blocking operations in lockscope's vocabulary
//     (chan ops, Sleep, Wait, model calls, net/http), minus sites
//     waived with //llmdm:allow lockscope — a waiver's justification
//     ("takes no locks, joined immediately") covers callers too;
//   - ChanOps: channel sends/receives that are *not* guarded by a
//     select with a default or a ctx.Done()/stop-family arm, minus
//     //llmdm:allow goleak waivers — goroutine-leak raw material;
//   - context threading (has a ctx parameter / actually uses it),
//     deferred recover(), stop-signal references (gospawn's facts);
//   - Selectors / ReturnsIdents: name-level facts cheap enough to keep
//     for every function (billmeter's spend-flow sharpening).
//
// Function literals are separate execution units and are skipped here;
// goleak walks goroutine literals directly.
package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// AcquireSite is one mutex acquire.
type AcquireSite struct {
	// Key is the canonical lock identity ("pkg/path.Type.field" or
	// "pkg/path.var"); "" for locks on untracked locals.
	Key string
	// Expr is the source form ("s.mu") for diagnostics.
	Expr string
	Pos  token.Pos
	// Read marks RLock.
	Read bool
	// Held are the canonical keys already held at this acquire.
	Held []string
}

// CallSite is one call expression with its lock context.
type CallSite struct {
	// Callee is the resolved target, nil when unresolved.
	Callee *FuncInfo
	// Expr renders the call target for diagnostics.
	Expr string
	Pos  token.Pos
	// Held are the canonical lock keys that may be held at the call.
	Held []string
}

// BlockOp is one direct blocking operation (lockscope vocabulary).
type BlockOp struct {
	Pos  token.Pos
	What string
	// Waived: the op carries //llmdm:allow lockscope. Consumers honor
	// the waiver unless running with IgnoreAnnotations — the flag stays
	// in the summary so load-bearing tests can resurface the site.
	Waived bool
}

// ChanOp is one unguarded channel operation (goleak raw material).
type ChanOp struct {
	Pos  token.Pos
	Send bool
	// Name is the channel's last path element ("out" for it.out).
	Name string
	// Waived: the op carries //llmdm:allow goleak (see BlockOp.Waived).
	Waived bool
}

// Summary is the per-function fact sheet.
type Summary struct {
	Func     *FuncInfo
	Acquires []AcquireSite
	Calls    []CallSite
	Blocking []BlockOp
	ChanOps  []ChanOp

	// HasCtxParam: declares a context.Context parameter; CtxUsed: that
	// parameter's name appears in the body.
	HasCtxParam bool
	CtxUsed     bool
	// Recovers: body installs a deferred recover(). RefsStop: body
	// references a ctx/stop/done-style identifier.
	Recovers bool
	RefsStop bool

	// Selectors are all selector names used in the body; ReturnsIdents
	// the identifiers appearing inside return statements.
	Selectors     map[string]bool
	ReturnsIdents map[string]bool
}

// Summary computes (and caches) f's summary.
func (pr *Program) Summary(f *FuncInfo) *Summary {
	if s, ok := pr.summaries[f]; ok {
		return s
	}
	s := &Summary{
		Func:          f,
		Selectors:     map[string]bool{},
		ReturnsIdents: map[string]bool{},
	}
	pr.summaries[f] = s
	d := f.Decl
	if d.Type.Params != nil {
		for _, p := range d.Type.Params.List {
			if pr.canonicalType(f.Pkg, f.File, p.Type) == "context.Context" {
				s.HasCtxParam = true
				for _, name := range p.Names {
					if name.Name != "_" && identUsed(d.Body, name.Name) {
						s.CtxUsed = true
					}
				}
			}
		}
	}
	if d.Body == nil {
		return s
	}
	s.Recovers = hasDeferredRecoverBody(d.Body)
	s.RefsStop = refsStopSignal(d.Body)
	ast.Inspect(d.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			s.Selectors[n.Sel.Name] = true
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						s.ReturnsIdents[id.Name] = true
					}
					return true
				})
			}
		}
		return true
	})
	w := &sumWalker{pr: pr, f: f, sum: s, held: map[string]token.Pos{}}
	w.stmts(d.Body.List)
	return s
}

// SummarizeBlock runs the summary walker over one statement block (e.g.
// a goroutine literal's body) in f's resolution scope. The result is
// not cached: literal bodies are not declarations.
func (pr *Program) SummarizeBlock(f *FuncInfo, body *ast.BlockStmt) *Summary {
	s := &Summary{
		Func:          f,
		Selectors:     map[string]bool{},
		ReturnsIdents: map[string]bool{},
	}
	w := &sumWalker{pr: pr, f: f, sum: s, held: map[string]token.Pos{}}
	w.stmts(body.List)
	return s
}

// LockKeyOf canonicalizes the receiver expression of a Lock/Unlock
// call: "s.mu" with s typed → "pkg/path.Type.mu"; a bare package-level
// "mu" → "pkg/path.mu"; locks on untracked locals → "".
func (pr *Program) LockKeyOf(f *FuncInfo, e ast.Expr) string {
	env := pr.typeEnv(f)
	switch e := e.(type) {
	case *ast.Ident:
		if _, local := env[e.Name]; local {
			return ""
		}
		if declaredLocally(f, e.Name) {
			return ""
		}
		return f.Pkg.Path + "." + e.Name
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, local := env[id.Name]; !local {
				if path, ok := importPath(f.File, id.Name); ok {
					return path + "." + e.Sel.Name
				}
			}
		}
		base := pr.exprType(f, env, e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return pr.LockKeyOf(f, e.X)
	case *ast.StarExpr:
		return pr.LockKeyOf(f, e.X)
	}
	return ""
}

// declaredLocally reports whether name is := or var-declared somewhere
// in the body (the type env only holds names whose type was inferred).
func declaredLocally(f *FuncInfo, name string) bool {
	if f.Decl.Body == nil {
		return false
	}
	found := false
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				if id.Name == name {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// sumWalker is the branch-sensitive body walk behind Summary. It mirrors
// lockscope's scanner (same arm-cloning and divergence rules) while
// recording acquires, call sites, blocking ops and chan ops.
type sumWalker struct {
	pr   *Program
	f    *FuncInfo
	sum  *Summary
	held map[string]token.Pos
}

func (w *sumWalker) heldKeys() []string {
	if len(w.held) == 0 {
		return nil
	}
	keys := make([]string, 0, len(w.held))
	for k := range w.held {
		keys = append(keys, k)
	}
	return keys
}

func (w *sumWalker) stmts(list []ast.Stmt) {
	for _, st := range list {
		w.stmt(st)
	}
}

func (w *sumWalker) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case nil:
	case *ast.ExprStmt:
		if w.lockStmt(st.X) {
			return
		}
		w.expr(st.X, false)
	case *ast.DeferStmt:
		// A deferred Unlock pins the critical section to function end —
		// leave held untouched. A deferred release/Close is recorded as a
		// call site (reslifecycle wants it); other deferred work runs
		// after the body.
		w.recordCall(st.Call)
	case *ast.GoStmt:
		// The spawn doesn't block; the body is a separate unit.
	case *ast.SendStmt:
		w.chanOp(st.Arrow, true, st.Chan, false)
		w.expr(st.Chan, true)
		w.expr(st.Value, false)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.expr(e, false)
		}
		for _, e := range st.Lhs {
			w.expr(e, true)
		}
	case *ast.DeclStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e, false)
				return false
			}
			return true
		})
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.expr(e, false)
		}
	case *ast.IfStmt:
		w.stmt(st.Init)
		w.expr(st.Cond, false)
		arms := [][]ast.Stmt{st.Body.List}
		if st.Else != nil {
			arms = append(arms, []ast.Stmt{st.Else})
		}
		w.mergeArms(arms, st.Else == nil)
	case *ast.ForStmt:
		w.stmt(st.Init)
		if st.Cond != nil {
			w.expr(st.Cond, false)
		}
		w.stmt(st.Post)
		w.mergeArms([][]ast.Stmt{st.Body.List}, true)
	case *ast.RangeStmt:
		w.expr(st.X, false)
		w.mergeArms([][]ast.Stmt{st.Body.List}, true)
	case *ast.BlockStmt:
		w.stmts(st.List)
	case *ast.SwitchStmt:
		w.stmt(st.Init)
		if st.Tag != nil {
			w.expr(st.Tag, false)
		}
		w.mergeArms(sumCaseArms(st.Body), !sumHasDefault(st.Body))
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init)
		w.stmt(st.Assign)
		w.mergeArms(sumCaseArms(st.Body), !sumHasDefault(st.Body))
	case *ast.SelectStmt:
		guarded := selectIsGuarded(st)
		var arms [][]ast.Stmt
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				w.commOp(cc.Comm, guarded)
			}
			arms = append(arms, cc.Body)
		}
		w.mergeArms(arms, false)
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	case *ast.IncDecStmt:
		w.expr(st.X, false)
	}
}

// lockStmt handles recv.Lock/RLock/Unlock/RUnlock expression statements,
// reporting whether the statement was consumed.
func (w *sumWalker) lockStmt(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		key := w.pr.LockKeyOf(w.f, sel.X)
		w.sum.Acquires = append(w.sum.Acquires, AcquireSite{
			Key:  key,
			Expr: ExprString(sel.X),
			Pos:  call.Pos(),
			Read: sel.Sel.Name == "RLock",
			Held: w.heldKeys(),
		})
		if key != "" {
			w.held[key] = call.Pos()
		}
		return true
	case "Unlock", "RUnlock":
		if key := w.pr.LockKeyOf(w.f, sel.X); key != "" {
			delete(w.held, key)
		}
		return true
	}
	return false
}

// commOp records the comm clause of a select: guarded ops never appear
// in ChanOps, but blocking classification matches lockscope (a select
// without default still blocks).
func (w *sumWalker) commOp(st ast.Stmt, guarded bool) {
	switch st := st.(type) {
	case *ast.SendStmt:
		w.chanOp(st.Arrow, true, st.Chan, guarded)
	case *ast.ExprStmt:
		if u, ok := st.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			w.chanOp(u.Pos(), false, u.X, guarded)
		}
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				w.chanOp(u.Pos(), false, u.X, guarded)
			}
		}
	}
}

func (w *sumWalker) chanOp(pos token.Pos, send bool, ch ast.Expr, guarded bool) {
	if guarded {
		return
	}
	w.sum.ChanOps = append(w.sum.ChanOps, ChanOp{
		Pos: pos, Send: send, Name: lastName(ch), Waived: w.waived(pos, "goleak"),
	})
	what := "channel receive"
	if send {
		what = "channel send"
	}
	w.blocking(pos, what)
}

// mergeArms mirrors lockscope's may-hold union over branch arms.
func (w *sumWalker) mergeArms(arms [][]ast.Stmt, includePre bool) {
	pre := cloneHeld(w.held)
	var states []map[string]token.Pos
	if includePre {
		states = append(states, pre)
	}
	for _, arm := range arms {
		sub := &sumWalker{pr: w.pr, f: w.f, sum: w.sum, held: cloneHeld(pre)}
		sub.stmts(arm)
		if !sumTerminates(arm) {
			states = append(states, sub.held)
		}
	}
	merged := map[string]token.Pos{}
	for _, st := range states {
		for k, v := range st {
			if _, ok := merged[k]; !ok {
				merged[k] = v
			}
		}
	}
	w.held = merged
}

// expr records calls, chan receives and blocking ops in an expression
// subtree. lhs marks assignment targets (whose index exprs still run).
func (w *sumWalker) expr(e ast.Expr, lhs bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.chanOp(n.Pos(), false, n.X, false)
				w.expr(n.X, false)
				return false
			}
		case *ast.CallExpr:
			w.recordCall(n)
			if verb := classifyBlocking(n); verb != "" {
				w.blocking(n.Pos(), verb)
			}
		}
		return true
	})
}

func (w *sumWalker) recordCall(call *ast.CallExpr) {
	// Lock ops and builtins are not call-graph edges.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && len(call.Args) == 0 {
		switch sel.Sel.Name {
		case "Lock", "RLock", "Unlock", "RUnlock":
			return
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "make", "len", "cap", "append", "new", "panic", "close", "copy", "delete", "recover",
			"print", "println", "min", "max", "string", "int", "int64", "float64", "byte":
			return
		}
	}
	w.sum.Calls = append(w.sum.Calls, CallSite{
		Callee: w.pr.Resolve(w.f, call),
		Expr:   ExprString(call.Fun),
		Pos:    call.Pos(),
		Held:   w.heldKeys(),
	})
}

func (w *sumWalker) blocking(pos token.Pos, what string) {
	w.sum.Blocking = append(w.sum.Blocking, BlockOp{
		Pos: pos, What: what, Waived: w.waived(pos, "lockscope"),
	})
}

// waived reports whether pos carries //llmdm:allow <analyzer> (same
// line or the line above) — waived sites are dropped from the summary
// so the waiver's justification covers interprocedural callers too.
func (w *sumWalker) waived(pos token.Pos, analyzer string) bool {
	return w.pr.Waived(w.f.Pkg, pos, analyzer)
}

// classifyBlocking mirrors lockscope's blocking-call vocabulary.
func classifyBlocking(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Complete", "Generate", "GenerateBatch", "Submit":
		return "model call ." + sel.Sel.Name
	case "Sleep":
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" {
			return "time.Sleep"
		}
	case "Wait":
		return ExprString(sel.X) + ".Wait()"
	}
	if id, ok := sel.X.(*ast.Ident); ok && id.Name == "http" {
		return "net/http call http." + sel.Sel.Name
	}
	return ""
}

// selectIsGuarded reports whether a select statement cannot park
// forever on its data arms: it has a default clause, or an arm
// receiving from a context Done()/Err() channel, a stop-family channel,
// or a timer/ticker .C.
func selectIsGuarded(st *ast.SelectStmt) bool {
	for _, c := range st.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm == nil {
			return true // default
		}
		if recvIsExitArm(cc.Comm) {
			return true
		}
	}
	return false
}

// recvIsExitArm classifies one comm clause as an exit signal: a receive
// from ctx.Done(), a stop/done/quit-named channel, or a timer channel.
func recvIsExitArm(st ast.Stmt) bool {
	var ch ast.Expr
	switch st := st.(type) {
	case *ast.ExprStmt:
		if u, ok := st.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			ch = u.X
		}
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				ch = u.X
			}
		}
	}
	if ch == nil {
		return false
	}
	if call, ok := ch.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "Done" || sel.Sel.Name == "Err") {
			return true
		}
		return false
	}
	name := lastName(ch)
	if name == "C" { // time.Timer/Ticker channels fire eventually
		return true
	}
	return IsStopChanName(name)
}

// IsStopChanName matches the stop/done/quit channel naming family.
func IsStopChanName(name string) bool {
	switch name {
	case "stop", "done", "quit", "closing", "closed", "exit", "cancel":
		return true
	}
	lower := strings.ToLower(name)
	for _, frag := range []string{"stop", "done", "quit", "close", "exit", "cancel"} {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	return false
}

func cloneHeld(m map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func sumCaseArms(body *ast.BlockStmt) [][]ast.Stmt {
	var arms [][]ast.Stmt
	for _, c := range body.List {
		arms = append(arms, c.(*ast.CaseClause).Body)
	}
	return arms
}

func sumHasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if c.(*ast.CaseClause).List == nil {
			return true
		}
	}
	return false
}

func sumTerminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.LabeledStmt:
		return sumTerminates([]ast.Stmt{last.Stmt})
	case *ast.BlockStmt:
		return sumTerminates(last.List)
	}
	return false
}

// identUsed reports whether name appears as an identifier in body.
func identUsed(body *ast.BlockStmt, name string) bool {
	if body == nil {
		return false
	}
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			used = true
		}
		return !used
	})
	return used
}

// hasDeferredRecoverBody reports whether body installs a deferred
// recover() (directly or via a deferred literal).
func hasDeferredRecoverBody(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		ast.Inspect(d.Call, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
					found = true
				}
			}
			return true
		})
		return true
	})
	return found
}

// refsStopSignal reports whether body references a ctx/stop/done-family
// identifier (gospawn's cancellability heuristic).
func refsStopSignal(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if isCtxOrStopIdent(n.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if isCtxOrStopIdent(n.Sel.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isCtxOrStopIdent(name string) bool {
	switch name {
	case "ctx", "context", "stop", "done", "quit", "closing", "closed":
		return true
	}
	for _, frag := range []string{"Ctx", "ctx", "Stop", "stop", "Done", "done", "Quit", "quit"} {
		if len(name) > len(frag) && strings.Contains(name, frag) {
			return true
		}
	}
	return false
}
