// Package analysistest runs an analyzer over fixture files and checks
// its diagnostics against `// want "regexp"` comments, mirroring
// x/tools' analysistest on the project's stdlib-only framework.
//
// A fixture is a directory of plain .go files (under the analyzer's
// testdata/src/<case>/). Every line expected to produce a diagnostic
// carries a trailing `// want "re"` comment whose regexp must match the
// diagnostic message; unexpected diagnostics and unmatched wants both
// fail the test. A fixture can pin the import path the analyzers see
// (for package-path-scoped rules) with a `//llmdm:pkgpath <path>`
// comment.
//
// A fixture directory whose immediate children are themselves
// directories is a *multi-package* fixture: each subdirectory loads as
// one package (import path from its `//llmdm:pkgpath` pin, else
// "fixture/<subdir>"), all packages index into one shared Program, and
// the analyzer runs over every package — so a `want` in package a can
// be triggered by a summary computed from package b, which is how the
// interprocedural analyzers are tested honestly.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// Run loads the fixture directory and applies the analyzer, comparing
// diagnostics against the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs := loadFixture(t, dir)
	prog := analysis.BuildProgram(pkgs)

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		ds, err := analysis.RunAnalyzersProg(prog, pkg, []*analysis.Analyzer{a}, false)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		diags = append(diags, ds...)
	}

	type want struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := map[string][]*want{} // "file:line" -> wants
	for _, pkg := range pkgs {
		for i, f := range pkg.Files {
			fn := pkg.Filenames[i]
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					unq := strings.ReplaceAll(m[1], `\"`, `"`)
					re, err := regexp.Compile(unq)
					if err != nil {
						t.Fatalf("analysistest: %s: bad want regexp %q: %v", fn, unq, err)
					}
					line := pkg.Fset.Position(c.Pos()).Line
					key := fn + ":" + itoa(line)
					wants[key] = append(wants[key], &want{re: re, raw: unq})
				}
			}
		}
	}

	for _, d := range diags {
		key := d.Pos.Filename + ":" + itoa(d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s", d)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("no diagnostic at %s matching %q", k, w.raw)
			}
		}
	}
}

// loadFixture loads a fixture directory: flat .go files as one package,
// or one package per subdirectory (multi-package mode).
func loadFixture(t *testing.T, dir string) []*analysis.Package {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var files []string
	var subdirs []string
	for _, e := range entries {
		switch {
		case e.IsDir():
			subdirs = append(subdirs, e.Name())
		case strings.HasSuffix(e.Name(), ".go"):
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(subdirs)

	var pkgs []*analysis.Package
	if len(files) > 0 {
		pkg, err := analysis.LoadFiles(files, "fixture")
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		pkgs = append(pkgs, pkg)
	}
	for _, sub := range subdirs {
		subEntries, err := os.ReadDir(filepath.Join(dir, sub))
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		var subFiles []string
		for _, e := range subEntries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				subFiles = append(subFiles, filepath.Join(dir, sub, e.Name()))
			}
		}
		if len(subFiles) == 0 {
			continue
		}
		pkg, err := analysis.LoadFiles(subFiles, "fixture/"+sub)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		t.Fatalf("analysistest: no fixture files in %s", dir)
	}
	return pkgs
}

// RunClean asserts the analyzer produces zero diagnostics on the fixture
// directory — the accepted-annotation half of each analyzer's suite.
func RunClean(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	Run(t, dir, a) // want comments (none expected) + unexpected check
}

// Findings applies the analyzer to an already-loaded package and returns
// the diagnostics — used by the in-tree enforcement tests.
func Findings(t *testing.T, pkg *analysis.Package, a *analysis.Analyzer, ignoreAnnotations bool) []analysis.Diagnostic {
	t.Helper()
	diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a}, ignoreAnnotations)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	return diags
}

func itoa(n int) string {
	var b [12]byte
	i := len(b)
	if n == 0 {
		return "0"
	}
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
