// Package metricname keeps obs metric names static and well-formed.
//
// A metric name built with fmt.Sprintf or string concatenation is a
// label-cardinality explosion waiting to happen: every distinct value
// mints a new family in the registry and a new series in every scrape.
// Names must be lowercase_snake literals (or constants), with dynamic
// dimensions expressed as label VALUES, which the registry bounds per
// family.
//
// The analyzer inspects every call to a method named Counter, Gauge or
// Histogram (the obs.Registry handle constructors) and requires the name
// argument to be:
//
//   - a string literal matching ^[a-z][a-z0-9_]*$, or
//   - an identifier or pkg.Name selector that resolves — through the
//     program-wide constant index, so constants declared in any loaded
//     package count — to such a constant; names from packages outside
//     the program are accepted as presumed constants.
//
// Any computed expression — fmt.Sprintf, +, a function call — is
// reported. The obs registry enforces the same grammar at runtime
// (obs.CheckMetricName), so a name that sneaks past the presumption
// still fails fast.
//
// The same grammar governs lifecycle event names: calls to a method
// named Event (the obs.Logger ctx-correlated emitter; name at argument
// index 2, after ctx and level) or Emit (the uncorrelated variant; name
// at index 1, after level) get the identical check, since event names
// feed the log_events_total counter's level label and the /debug/events
// name filter — a dynamic event name is the same cardinality explosion
// one hop later. This also covers the slo_* families, whose names are
// plain Counter/Gauge registrations inside the obs SLO tracker.
//
// Alert rule names get the same treatment: calls to a method named
// AddRule (the obs.AlertEngine registration; name at argument index 0)
// must pass a lowercase_snake constant, because rule names become
// alert_transition event attributes and /v1/alerts vocabulary — and the
// alert_* / tenant_* metric families registered by the alert engine and
// tenant accountant flow through the ordinary Counter/Gauge checks.
package metricname

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"

	"repro/internal/analysis"
)

// NameRE is the metric-name grammar, shared (by value) with the obs
// registry's runtime guard.
var NameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// Analyzer is the metricname rule.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "obs metric and event names must be lowercase_snake string constants, " +
		"never built with fmt.Sprintf or concatenation (label-cardinality guard)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	consts := packageStringConsts(pass)
	pass.EachFile(func(name string, f *ast.File) {
		analysis.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Counter", "Gauge", "Histogram":
				checkNameArg(pass, f, consts, sel.Sel.Name, "metric", call.Args[0])
			case "Event":
				// Logger.Event(ctx, level, name, kv...): name at index 2.
				if len(call.Args) >= 3 {
					checkNameArg(pass, f, consts, sel.Sel.Name, "event", call.Args[2])
				}
			case "Emit":
				// Logger.Emit(level, name, kv...): name at index 1.
				if len(call.Args) >= 2 {
					checkNameArg(pass, f, consts, sel.Sel.Name, "event", call.Args[1])
				}
			case "AddRule":
				// AlertEngine.AddRule(name, cond, opts...): rule names land
				// in alert_transition event attributes, the alert_state
				// vocabulary and /v1/alerts — same charter, name at index 0.
				checkNameArg(pass, f, consts, sel.Sel.Name, "alert-rule", call.Args[0])
			}
			return true
		})
	})
	return nil
}

func checkNameArg(pass *analysis.Pass, f *ast.File, consts map[string]string, method, kind string, arg ast.Expr) {
	switch a := arg.(type) {
	case *ast.BasicLit:
		if a.Kind != token.STRING {
			return // not a registry call shape
		}
		name, err := strconv.Unquote(a.Value)
		if err != nil {
			return
		}
		if !NameRE.MatchString(name) {
			pass.Reportf(arg.Pos(),
				"%s %s name %q is not lowercase_snake (want %s)", method, kind, name, NameRE.String())
		}
	case *ast.Ident:
		if lit, ok := consts[a.Name]; ok && !NameRE.MatchString(lit) {
			pass.Reportf(arg.Pos(),
				"%s %s name constant %s = %q is not lowercase_snake (want %s)",
				method, kind, a.Name, lit, NameRE.String())
		}
		// Unresolvable identifiers are presumed constants from another
		// package; the obs runtime guard backstops them.
	case *ast.SelectorExpr:
		// pkg.Const: resolve through the program-wide constant index.
		// Constants from packages outside the program remain presumed
		// good — the obs runtime guard backstops them.
		if lit, ok := pass.Prog.ConstStringIn(pass.Pkg.Path, f, a); ok && !NameRE.MatchString(lit) {
			pass.Reportf(arg.Pos(),
				"%s %s name constant %s = %q is not lowercase_snake (want %s)",
				method, kind, analysis.ExprString(a), lit, NameRE.String())
		}
	default:
		pass.Reportf(arg.Pos(),
			"%s %s name is built dynamically: use a lowercase_snake string constant and put dynamic dimensions in label values", method, kind)
	}
}

// packageStringConsts collects top-level `const name = "literal"`
// declarations across the package's files.
func packageStringConsts(pass *analysis.Pass) map[string]string {
	consts := map[string]string{}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						break
					}
					lit, ok := vs.Values[i].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					if s, err := strconv.Unquote(lit.Value); err == nil {
						consts[name.Name] = s
					}
				}
			}
		}
	}
	return consts
}
