package metricname_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/metricname"
)

func TestFlagsBadAndDynamicNames(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "flag"), metricname.Analyzer)
}

func TestAcceptsConstantSnakeNames(t *testing.T) {
	analysistest.RunClean(t, filepath.Join("testdata", "src", "ok"), metricname.Analyzer)
}

func TestResolvesCrossPackageConstants(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "crosspkg"), metricname.Analyzer)
}
