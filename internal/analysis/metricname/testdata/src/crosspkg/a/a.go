// Multi-package fixture, package a: metric names referenced as
// pkg.Const resolve through the program-wide constant index, so a bad
// constant declared in package b is caught at the registration here.
package fixture

import (
	other "example.com/unloaded"
	fixb "fixture/b"
)

func register(r registry) {
	r.Counter(fixb.BadName) // want "metric name constant fixb\.BadName = \"Bad-Name\" is not lowercase_snake"
	r.Counter(fixb.GoodName)
	r.Counter(other.Unknown) // outside the program: presumed constant
}
