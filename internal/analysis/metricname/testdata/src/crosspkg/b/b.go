// Multi-package fixture, package b: the constants package a registers
// metrics under. Nothing here calls the registry, so nothing here is
// reported — the bad name only matters at a's registration site.
package fixture

const (
	BadName  = "Bad-Name"
	GoodName = "good_name"
)
