// Fixture: metric names that are not lowercase_snake constants are
// reported — bad literals, bad package constants, and any computed name.
// Lifecycle event names (Logger.Event / Logger.Emit) get the same rule.
package fixture

import "fmt"

const badMetricName = "Sched-Window.Seconds"

const badEventName = "SLO-Burn!"

func register(reg registry, model string) {
	reg.Counter("BadName")                               // want "Counter metric name \"BadName\" is not lowercase_snake"
	reg.Gauge(badMetricName)                             // want "Gauge metric name constant badMetricName = \"Sched-Window.Seconds\" is not lowercase_snake"
	reg.Counter(fmt.Sprintf("requests_%s_total", model)) // want "Counter metric name is built dynamically"
	reg.Histogram("latency_"+model, nil)                 // want "Histogram metric name is built dynamically"
	reg.Gauge("slo_Burn_Rate", "class", "interactive")   // want "Gauge metric name \"slo_Burn_Rate\" is not lowercase_snake"
}

func emitEvents(ctx context, log logger, model string) {
	log.Event(ctx, infoLevel, "Proxy-Admit")                    // want "Event event name \"Proxy-Admit\" is not lowercase_snake"
	log.Event(ctx, infoLevel, badEventName, "model", model)     // want "Event event name constant badEventName = \"SLO-Burn!\" is not lowercase_snake"
	log.Event(ctx, infoLevel, "cascade_"+model)                 // want "Event event name is built dynamically"
	log.Emit(warnLevel, fmt.Sprintf("breaker_%s", model))       // want "Emit event name is built dynamically"
	log.Emit(warnLevel, "Breaker_Transition", "from", "closed") // want "Emit event name \"Breaker_Transition\" is not lowercase_snake"
}

const badRuleName = "SLO Burn High"

func registerAlerts(eng engine, tenant string) {
	eng.AddRule("Breaker-Open", cond{})                        // want "AddRule alert-rule name \"Breaker-Open\" is not lowercase_snake"
	eng.AddRule(badRuleName, cond{})                           // want "AddRule alert-rule name constant badRuleName = \"SLO Burn High\" is not lowercase_snake"
	eng.AddRule(fmt.Sprintf("spend_spike_%s", tenant), cond{}) // want "AddRule alert-rule name is built dynamically"
	eng.AddRule("tenant_"+tenant, cond{})                      // want "AddRule alert-rule name is built dynamically"
}
