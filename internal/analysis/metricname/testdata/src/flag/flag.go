// Fixture: metric names that are not lowercase_snake constants are
// reported — bad literals, bad package constants, and any computed name.
package fixture

import "fmt"

const badMetricName = "Sched-Window.Seconds"

func register(reg registry, model string) {
	reg.Counter("BadName")                               // want "Counter metric name \"BadName\" is not lowercase_snake"
	reg.Gauge(badMetricName)                             // want "Gauge metric name constant badMetricName = \"Sched-Window.Seconds\" is not lowercase_snake"
	reg.Counter(fmt.Sprintf("requests_%s_total", model)) // want "Counter metric name is built dynamically"
	reg.Histogram("latency_"+model, nil)                 // want "Histogram metric name is built dynamically"
}
