// Fixture: the accepted shapes — lowercase_snake literals, resolvable
// lowercase constants, presumed cross-package constants (the obs runtime
// guard backstops those), and dynamic dimensions as label values. Event
// emitters follow the same shapes, with the dynamic parts in kv attrs.
package fixture

const requestsTotal = "requests_total"

const escalateEvent = "cascade_escalate"

func register(reg registry, model string) {
	reg.Counter("proxy_requests_total", "source", "cache")
	reg.Counter(requestsTotal)
	reg.Gauge(obs.QueueDepthMetric)
	reg.Histogram("sched_batch_size", nil, "model", model)
	reg.Gauge("slo_burn_rate", "class", "interactive", "window", "5m")
}

func emitEvents(ctx context, log logger, model string) {
	log.Event(ctx, infoLevel, "proxy_admit", "model", model)
	log.Event(ctx, infoLevel, escalateEvent, "from", model)
	log.Emit(warnLevel, "breaker_transition", "from", "closed", "to", "open")
	log.Emit(warnLevel, obs.ShedEvent, "queued", 3)
	log.Event(ctx)          // too few args for a name: not an emitter shape
	log.Emit(warnLevel)     // ditto
	flag.Emit("NOT A NAME") // single-arg Emit on some other type: ignored
}

const spendSpikeRule = "tenant_spend_spike"

func registerAlerts(eng engine, tenant string) {
	eng.AddRule("slo_latency_burn_high", cond{})
	eng.AddRule(spendSpikeRule, cond{})
	eng.AddRule(obs.BreakerOpenRule, cond{})
	// Dynamic dimensions belong in the condition, not the rule name.
	eng.AddRule("tenant_spend_spike", spendCond{Tenant: tenant})
}
