// Fixture: the accepted shapes — lowercase_snake literals, resolvable
// lowercase constants, presumed cross-package constants (the obs runtime
// guard backstops those), and dynamic dimensions as label values.
package fixture

const requestsTotal = "requests_total"

func register(reg registry, model string) {
	reg.Counter("proxy_requests_total", "source", "cache")
	reg.Counter(requestsTotal)
	reg.Gauge(obs.QueueDepthMetric)
	reg.Histogram("sched_batch_size", nil, "model", model)
}
