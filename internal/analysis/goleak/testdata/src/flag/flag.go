// Fixture: serving-path goroutines parked forever on a channel op with
// no guaranteed counterpart — directly, in a managed-spawn literal, and
// through a summarized callee.
//
//llmdm:pkgpath repro/internal/proxy
package fixture

type spawner struct{}

func (spawner) Go(name string, fn func()) { fn() }

var reg spawner

func directSend(ch chan int) {
	go func() {
		ch <- 1 // want "park forever"
	}()
}

func directRecv(data chan int) {
	go func() {
		v := <-data // want "park forever"
		_ = v
	}()
}

func managedSpawnLeaks(ch chan int) {
	reg.Go("pump", func() {
		ch <- 2 // want "park forever"
	})
}

// pump's summary carries the unguarded send; the goroutine inherits it.
func pump(ch chan int) {
	ch <- 3
}

func throughCallee(ch chan int) {
	go func() {
		pump(ch) // want "no guaranteed counterpart"
	}()
}

func namedTarget(ch chan int) {
	go leakyLoop(ch) // want "no guaranteed counterpart"
}

func leakyLoop(ch chan int) {
	for {
		ch <- 4
	}
}
