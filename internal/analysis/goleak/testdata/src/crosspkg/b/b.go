// Multi-package fixture, package b: not on the serving path itself, so
// nothing here is reported — but its summaries decide package a's fate.
//
//llmdm:pkgpath fixture/b
package fixture

import "context"

// PumpForever's summary carries an unguarded send.
func PumpForever(ch chan int) {
	for {
		ch <- 1
	}
}

// PumpGuarded's sends all sit under a ctx.Done select.
func PumpGuarded(ctx context.Context, ch chan int) {
	for {
		select {
		case ch <- 1:
		case <-ctx.Done():
			return
		}
	}
}
