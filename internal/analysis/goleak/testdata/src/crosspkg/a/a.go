// Multi-package fixture, package a (serving path): the spawn sites are
// here; whether they leak is decided by package b's summaries.
//
//llmdm:pkgpath repro/internal/proxy
package fixture

import (
	"context"

	fixb "fixture/b"
)

func spawnLeaky(ch chan int) {
	go fixb.PumpForever(ch) // want "no guaranteed counterpart"
}

func spawnClean(ctx context.Context, ch chan int) {
	go fixb.PumpGuarded(ctx, ch)
}
