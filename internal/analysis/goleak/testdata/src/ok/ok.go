// Fixture: goroutines with provable exits are accepted — select with a
// ctx.Done or stop arm, select with default, buffered-slot sends, stop-
// family receives, timer channels, and clean summarized callees.
//
//llmdm:pkgpath repro/internal/proxy
package fixture

import "context"

type ticker struct{ C chan int }

type worker struct {
	stop    chan struct{}
	results chan int
}

func newWorker() *worker {
	return &worker{
		stop:    make(chan struct{}),
		results: make(chan int, 16),
	}
}

func selectWithDone(ctx context.Context, ch chan int) {
	go func() {
		select {
		case ch <- 1:
		case <-ctx.Done():
		}
	}()
}

func selectWithStopArm(w *worker, ch chan int) {
	go func() {
		for {
			select {
			case v := <-ch:
				_ = v
			case <-w.stop:
				return
			}
		}
	}()
}

func selectWithDefault(ch chan int) {
	go func() {
		select {
		case ch <- 1:
		default:
		}
	}()
}

// results is observed buffered in this package: the send completes.
func bufferedSend(w *worker) {
	go func() {
		w.results <- 7
	}()
}

func stopFamilyRecv(w *worker) {
	go func() {
		<-w.stop
	}()
}

func timerRecv(tk *ticker) {
	go func() {
		<-tk.C
	}()
}

func closeNeverBlocks(ch chan int) {
	go func() {
		close(ch)
	}()
}

// drain's summary is clean (guarded select), so spawning it is too.
func drain(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ch:
		case <-ctx.Done():
			return
		}
	}
}

func namedClean(ctx context.Context, ch chan int) {
	go drain(ctx, ch)
}
