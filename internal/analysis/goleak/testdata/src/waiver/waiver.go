// Fixture: //llmdm:allow goleak at the channel op accepts a deliberate
// parked send. The load-bearing test reruns with IgnoreAnnotations and
// expects the finding back.
//
//llmdm:pkgpath repro/internal/proxy
package fixture

func deliberatePark(ch chan int) {
	go func() {
		//llmdm:allow goleak fixture: receiver lifetime proven elsewhere
		ch <- 1
	}()
}
