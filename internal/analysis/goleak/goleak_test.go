package goleak_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/goleak"
)

func TestFlagsParkedGoroutines(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "flag"), goleak.Analyzer)
}

func TestAcceptsGuardedOps(t *testing.T) {
	analysistest.RunClean(t, filepath.Join("testdata", "src", "ok"), goleak.Analyzer)
}

func TestCrossPackageSummaries(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "crosspkg"), goleak.Analyzer)
}

func TestWaiverIsHonoredAndLoadBearing(t *testing.T) {
	dir := filepath.Join("testdata", "src", "waiver")
	analysistest.RunClean(t, dir, goleak.Analyzer)

	pkg, err := analysis.LoadDir(dir, "repro/internal/proxy")
	if err != nil {
		t.Fatal(err)
	}
	diags := analysistest.Findings(t, pkg, goleak.Analyzer, true)
	if len(diags) != 1 {
		t.Fatalf("IgnoreAnnotations should resurface the waived send, got %d diagnostics: %v", len(diags), diags)
	}
}
