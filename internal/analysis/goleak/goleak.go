// Package goleak statically flags serving-path goroutines that can park
// forever on a channel operation with no guaranteed counterpart.
//
// The runtime -race gate catches data races but not leaks: a goroutine
// blocked on `ch <- v` after every receiver has returned simply
// accumulates. On the serving path (the same package list gospawn
// governs) every goroutine's channel operations must be provably
// exit-able. A channel op is accepted when any of these hold:
//
//   - it sits in a select with a default clause or an exit arm — a
//     receive from ctx.Done()/Err(), from a stop/done/quit-family
//     channel, or from a timer/ticker .C;
//   - it is a receive from a stop-family channel or a timer .C (the
//     op *is* the exit wait);
//   - it is a send on a channel name observed being made with a buffer
//     anywhere in its package (`make(chan T, n>0)`) — the slot
//     guarantees the send completes;
//   - close(ch), which never blocks.
//
// The check is interprocedural: a goroutine body that *calls* a
// function whose summary (transitively) contains an unguarded channel
// op is flagged at the call site, using the Program layer's summaries.
// Sends/receives outside any goroutine are not goleak's business —
// blocking a request-scoped function is lockscope/ctxflow territory.
//
// Escape hatch: //llmdm:allow goleak <reason> at the channel op (for
// ops waived inside a summarized callee, the waiver also silences every
// caller — the justification travels with the summary).
package goleak

import (
	"fmt"
	"go/ast"
	"go/token"

	"repro/internal/analysis"
)

// Analyzer is the goleak rule.
var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc: "serving-path goroutines must not park forever: every channel op reachable from a " +
		"goroutine body (through summarized callees too) needs a select default, a ctx.Done/stop " +
		"arm, a buffered slot, or a stop-family receive",
	Run: run,
}

// servingPath mirrors gospawn's governed packages: the layers where a
// leaked goroutine outlives a request.
var servingPath = []string{
	"repro/internal/proxy",
	"repro/internal/sched",
	"repro/internal/resilience",
	"repro/internal/obs",
	"repro/internal/llm",
	"repro/internal/core/cascade",
	"repro/internal/core/semcache",
}

func run(pass *analysis.Pass) error {
	governed := false
	for _, p := range servingPath {
		if pass.PathHasPrefix(p) {
			governed = true
			break
		}
	}
	if !governed {
		return nil
	}
	pass.EachFile(func(name string, f *ast.File) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fi := pass.Prog.FuncOf(pass.Pkg, fd)
			if fi == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					checkSpawn(pass, fi, n.Call, n.Pos())
				case *ast.CallExpr:
					// Managed spawns: obs.Go(reg, name, fn) / reg.Go(name, fn).
					if isObsGo(n) && len(n.Args) >= 2 {
						if lit, ok := n.Args[len(n.Args)-1].(*ast.FuncLit); ok {
							checkBody(pass, fi, lit.Body)
						}
					}
				}
				return true
			})
		}
	})
	return nil
}

// isObsGo matches obs.Go(...) / reg.Go(...) spawn helpers.
func isObsGo(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Go"
}

// checkSpawn handles a `go` statement: literals are walked directly,
// named targets are judged by their summaries.
func checkSpawn(pass *analysis.Pass, encl *analysis.FuncInfo, call *ast.CallExpr, pos token.Pos) {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		checkBody(pass, encl, lit.Body)
		return
	}
	callee := pass.Prog.Resolve(encl, call)
	if callee == nil {
		return // gospawn already demands managed spawns; stay quiet here
	}
	if witness := leakWitness(pass.Prog, callee, pass.IgnoreAnnotations); witness != "" {
		pass.Reportf(pos,
			"goroutine runs %s, which %s with no guaranteed counterpart and no ctx.Done/stop arm — "+
				"add an exit arm or annotate //llmdm:allow goleak",
			callee, witness)
	}
}

// checkBody walks a goroutine literal's body with the summary walker's
// channel-op semantics and reports each unguarded op; calls into
// summarized functions are judged by leakWitness.
func checkBody(pass *analysis.Pass, encl *analysis.FuncInfo, body *ast.BlockStmt) {
	sum := pass.Prog.SummarizeBlock(encl, body)
	for _, op := range sum.ChanOps {
		if opAccepted(pass.Prog, encl.Pkg.Path, op, pass.IgnoreAnnotations) {
			continue
		}
		verb := "receive from"
		if op.Send {
			verb = "send on"
		}
		pass.Reportf(op.Pos,
			"goroutine %s %q can park forever: no select default, no ctx.Done/stop arm, and no "+
				"buffered slot observed for it — add an exit arm or annotate //llmdm:allow goleak",
			verb, op.Name)
	}
	for _, c := range sum.Calls {
		if c.Callee == nil {
			continue
		}
		if witness := leakWitness(pass.Prog, c.Callee, pass.IgnoreAnnotations); witness != "" {
			pass.Reportf(c.Pos,
				"goroutine calls %s, which %s with no guaranteed counterpart and no ctx.Done/stop arm — "+
					"add an exit arm or annotate //llmdm:allow goleak",
				c.Callee, witness)
		}
	}
}

// opAccepted applies the non-blocking escape hatches to one channel op.
func opAccepted(prog *analysis.Program, pkgPath string, op analysis.ChanOp, ignoreAnnots bool) bool {
	if op.Waived && !ignoreAnnots {
		return true
	}
	if op.Send {
		return prog.BufferedChanName(pkgPath, op.Name)
	}
	// Receives: waiting on a stop/done channel or a timer IS the exit.
	if op.Name == "C" || op.Name == "Done" || op.Name == "Err" {
		return true
	}
	return analysis.IsStopChanName(op.Name)
}

// leakWitness reports a human description of the first unguarded channel
// op reachable from f (through resolvable callees), "" when f is clean.
// Memoized program-wide (separately per annotation mode); cycles resolve
// to clean-in-progress.
func leakWitness(prog *analysis.Program, f *analysis.FuncInfo, ignoreAnnots bool) string {
	stashKey := "goleak.witness"
	if ignoreAnnots {
		stashKey = "goleak.witness.ignore"
	}
	memo, ok := prog.Stash[stashKey].(map[*analysis.FuncInfo]*string)
	if !ok {
		memo = map[*analysis.FuncInfo]*string{}
		prog.Stash[stashKey] = memo
	}
	if w, ok := memo[f]; ok {
		if w == nil {
			return "" // in-progress (cycle): assume clean
		}
		return *w
	}
	memo[f] = nil
	witness := ""
	sum := prog.Summary(f)
	for _, op := range sum.ChanOps {
		if opAccepted(prog, f.Pkg.Path, op, ignoreAnnots) {
			continue
		}
		verb := "receives from"
		if op.Send {
			verb = "sends on"
		}
		witness = fmt.Sprintf("%s %q", verb, op.Name)
		break
	}
	if witness == "" {
		for _, c := range sum.Calls {
			if c.Callee == nil || c.Callee == f {
				continue
			}
			if sub := leakWitness(prog, c.Callee, ignoreAnnots); sub != "" {
				witness = fmt.Sprintf("calls %s, which %s", c.Callee, sub)
				break
			}
		}
	}
	memo[f] = &witness
	return witness
}
