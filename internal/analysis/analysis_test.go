package analysis_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

// reportAll is a toy analyzer that reports every function declaration —
// enough surface to exercise the annotation machinery.
var reportAll = &analysis.Analyzer{
	Name: "reportall",
	Doc:  "reports every function declaration",
	Run: func(pass *analysis.Pass) error {
		pass.EachFile(func(name string, f *ast.File) {
			for _, d := range f.Decls {
				if fn, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fn.Pos(), "function %s", fn.Name.Name)
				}
			}
		})
		return nil
	},
}

func writeFixture(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "f.go")
	if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAllowAnnotationSuppresses(t *testing.T) {
	path := writeFixture(t, `package p

func flagged() {}

//llmdm:allow reportall justified because the test says so
func waivedAbove() {}

func waivedSameLine() {} //llmdm:allow reportall same-line form
`)
	pkg, err := analysis.LoadFiles([]string{path}, "example.test/p")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{reportAll}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Message != "function flagged" {
		t.Fatalf("diagnostics = %v, want exactly [function flagged]", diags)
	}

	// IgnoreAnnotations surfaces the waived findings — the enforcement
	// tests use this to prove annotations are load-bearing.
	all, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{reportAll}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("with IgnoreAnnotations: %d diagnostics, want 3", len(all))
	}
}

func TestAllowAnnotationIsPerAnalyzer(t *testing.T) {
	path := writeFixture(t, `package p

//llmdm:allow otherrule not this one
func stillFlagged() {}
`)
	pkg, err := analysis.LoadFiles([]string{path}, "example.test/p")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{reportAll}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want the unwaived finding", diags)
	}
}

func TestPkgpathDirectiveOverridesImportPath(t *testing.T) {
	path := writeFixture(t, `//llmdm:pkgpath repro/internal/sched

package p
`)
	pkg, err := analysis.LoadFiles([]string{path}, "fixture")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Path != "repro/internal/sched" {
		t.Fatalf("pkg.Path = %q, want the pinned path", pkg.Path)
	}
}

func TestLoadSkipsTestFilesAndTestdata(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, pkg := range pkgs {
		for _, fn := range pkg.Filenames {
			if filepath.Base(fn) == "f.go" && pkg.Path == "fixture" {
				t.Errorf("testdata fixture leaked into the module load: %s", fn)
			}
			if base := filepath.Base(fn); len(base) > 8 && base[len(base)-8:] == "_test.go" {
				t.Errorf("test file leaked into the load: %s", fn)
			}
			if filepath.Base(filepath.Dir(fn)) == "testdata" {
				t.Errorf("testdata dir leaked into the load: %s", fn)
			}
		}
	}
}
