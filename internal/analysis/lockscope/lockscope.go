// Package lockscope forbids blocking calls while a mutex is held.
//
// The serving path's concurrency design (see internal/proxy's package
// doc) keeps locks around map bookkeeping only; model calls, channel
// operations, sleeps and HTTP round-trips must run outside every
// critical section, or one slow upstream serializes the whole stack —
// the cost/latency failure mode the paper's Section III is about.
//
// The analyzer tracks Lock/RLock→Unlock/RUnlock regions within each
// function body (a deferred Unlock holds to function end) and reports,
// inside a held region:
//
//   - channel sends and receives (except under a select with a default
//     clause, which cannot block);
//   - model-call methods: Complete, Generate, GenerateBatch, Submit;
//   - time.Sleep, sync.WaitGroup-style .Wait(), and net/http calls;
//   - calls into functions whose summaries carry a direct, unwaived
//     blocking op (one call-graph level: the blocking op hidden one
//     frame down is the same serialization bug).
//
// Tracking is a branch-sensitive may-hold approximation (no full CFG):
// if/select/switch arms are analyzed with cloned lock state, an arm
// ending in return/panic/break discards its releases, and the states of
// the surviving arms are unioned — so an early-return `unlock; return`
// guard does not mask a send performed under the lock on the main path.
// A deliberate violation (e.g. sched's bounded enqueue under its
// close-gate RLock) is annotated //llmdm:allow lockscope with its
// justification.
package lockscope

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockscope rule.
var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc: "forbid blocking calls (model calls, channel ops, sleeps, net/http, Wait) " +
		"while a sync.Mutex/RWMutex is held",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.EachFile(func(name string, f *ast.File) {
		for _, decl := range f.Decls {
			var fi *analysis.FuncInfo
			if fd, ok := decl.(*ast.FuncDecl); ok {
				fi = pass.Prog.FuncOf(pass.Pkg, fd)
			}
			analysis.Inspect(decl, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						scanBody(pass, fi, fn.Body)
					}
				case *ast.FuncLit:
					scanBody(pass, fi, fn.Body)
				}
				return true
			})
		}
	})
	return nil
}

// scanner walks one function body in source order, tracking which lock
// receivers are currently held.
type scanner struct {
	pass *analysis.Pass
	fi   *analysis.FuncInfo        // enclosing declaration, for call resolution
	held map[string]token.Position // lock expr -> acquire position
}

func scanBody(pass *analysis.Pass, fi *analysis.FuncInfo, body *ast.BlockStmt) {
	s := &scanner{pass: pass, fi: fi, held: map[string]token.Position{}}
	s.stmts(body.List)
}

type lockKind int

const (
	notLock lockKind = iota
	acquire
	release
)

// lockOp classifies expr as recv.Lock/RLock (acquire) or
// recv.Unlock/RUnlock (release).
func lockOp(expr ast.Expr) (recv string, kind lockKind) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return "", notLock
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", notLock
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return analysis.ExprString(sel.X), acquire
	case "Unlock", "RUnlock":
		return analysis.ExprString(sel.X), release
	}
	return "", notLock
}

func (s *scanner) stmts(list []ast.Stmt) {
	for _, st := range list {
		s.stmt(st)
	}
}

func (s *scanner) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case nil:
	case *ast.ExprStmt:
		if recv, kind := lockOp(st.X); kind != notLock {
			if kind == acquire {
				s.held[recv] = s.pass.Pkg.Fset.Position(st.Pos())
			} else {
				delete(s.held, recv)
			}
			return
		}
		s.expr(st.X)
	case *ast.DeferStmt:
		// `defer recv.Unlock()` pins the critical section to the function
		// end: the held state persists, which is exactly right. Other
		// deferred calls run after the body; skip them.
		return
	case *ast.GoStmt:
		// The spawn itself never blocks; the goroutine body is its own
		// unit (scanned via the FuncLit case of run).
	case *ast.SendStmt:
		s.blocking(st.Arrow, "channel send")
		s.expr(st.Chan)
		s.expr(st.Value)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.expr(e)
		}
		for _, e := range st.Lhs {
			s.expr(e)
		}
	case *ast.DeclStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				s.expr(e)
				return false
			}
			return true
		})
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.expr(e)
		}
	case *ast.IfStmt:
		s.stmt(st.Init)
		s.expr(st.Cond)
		arms := [][]ast.Stmt{st.Body.List}
		if st.Else != nil {
			arms = append(arms, []ast.Stmt{st.Else})
		}
		// Without an else, the condition-false path carries the pre-state.
		s.mergeArms(arms, st.Else == nil)
	case *ast.ForStmt:
		s.stmt(st.Init)
		if st.Cond != nil {
			s.expr(st.Cond)
		}
		s.stmt(st.Post)
		// The body runs zero or more times; after the loop either state
		// may hold.
		s.mergeArms([][]ast.Stmt{st.Body.List}, true)
	case *ast.RangeStmt:
		s.expr(st.X)
		s.mergeArms([][]ast.Stmt{st.Body.List}, true)
	case *ast.BlockStmt:
		s.stmts(st.List)
	case *ast.SwitchStmt:
		s.stmt(st.Init)
		if st.Tag != nil {
			s.expr(st.Tag)
		}
		s.mergeArms(caseArms(st.Body), !hasDefaultCase(st.Body))
	case *ast.TypeSwitchStmt:
		s.stmt(st.Init)
		s.stmt(st.Assign)
		s.mergeArms(caseArms(st.Body), !hasDefaultCase(st.Body))
	case *ast.SelectStmt:
		// A select with a default clause cannot block on its comm ops.
		hasDefault := false
		for _, c := range st.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		var arms [][]ast.Stmt
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil && !hasDefault {
				s.stmt(cc.Comm)
			}
			arms = append(arms, cc.Body)
		}
		// Exactly one arm runs; there is no fall-through pre-state path.
		s.mergeArms(arms, false)
	case *ast.LabeledStmt:
		s.stmt(st.Stmt)
	case *ast.IncDecStmt:
		s.expr(st.X)
	}
}

// mergeArms analyzes each arm of a branching statement under a clone of
// the current lock state and replaces s.held with the union of the
// states of the arms that fall through (may-hold). Arms that diverge —
// end in return, panic, break or continue — discard their releases, so
// an `unlock; return` guard branch cannot mask a blocking call performed
// under the lock on the main path. includePre adds the pre-state as a
// path of its own (if without else, switch without default, loop body
// running zero times).
func (s *scanner) mergeArms(arms [][]ast.Stmt, includePre bool) {
	pre := cloneState(s.held)
	var states []map[string]token.Position
	if includePre {
		states = append(states, pre)
	}
	for _, arm := range arms {
		sub := &scanner{pass: s.pass, fi: s.fi, held: cloneState(pre)}
		sub.stmts(arm)
		if !terminates(arm) {
			states = append(states, sub.held)
		}
	}
	merged := map[string]token.Position{}
	for _, st := range states {
		for k, v := range st {
			if _, ok := merged[k]; !ok {
				merged[k] = v
			}
		}
	}
	s.held = merged
}

// terminates reports whether a statement list visibly diverges: its last
// statement is a return, panic, or branch (break/continue/goto).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.LabeledStmt:
		return terminates([]ast.Stmt{last.Stmt})
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}

func cloneState(m map[string]token.Position) map[string]token.Position {
	c := make(map[string]token.Position, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func caseArms(body *ast.BlockStmt) [][]ast.Stmt {
	var arms [][]ast.Stmt
	for _, c := range body.List {
		arms = append(arms, c.(*ast.CaseClause).Body)
	}
	return arms
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if c.(*ast.CaseClause).List == nil {
			return true
		}
	}
	return false
}

// expr scans an expression subtree for blocking operations.
func (s *scanner) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate unit
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.blocking(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if verb := blockingCall(n); verb != "" {
				s.blocking(n.Pos(), verb)
			} else {
				s.calleeBlocking(n)
			}
		}
		return true
	})
}

// calleeBlocking consults the call graph one level deep: a call made
// under a lock into a function whose own body provably blocks is the
// same serialization bug with the blocking op hidden one frame down.
// Only direct (non-transitive) blocking ops count, and an op waived at
// its own site (//llmdm:allow lockscope) is honored here too — the
// justification covers interprocedural callers.
func (s *scanner) calleeBlocking(call *ast.CallExpr) {
	if len(s.held) == 0 || s.fi == nil {
		return
	}
	callee := s.pass.Prog.Resolve(s.fi, call)
	if callee == nil {
		return
	}
	sum := s.pass.Prog.Summary(callee)
	if sum == nil {
		return
	}
	for _, op := range sum.Blocking {
		if op.Waived && !s.pass.IgnoreAnnotations {
			continue
		}
		s.blocking(call.Pos(), "call into "+callee.String()+" (which does "+op.What+")")
		return
	}
}

// blockingCall classifies a call as one of the forbidden-under-lock
// operations, returning a description or "".
func blockingCall(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Complete", "Generate", "GenerateBatch", "Submit":
		return "model call ." + sel.Sel.Name
	case "Sleep":
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" {
			return "time.Sleep"
		}
	case "Wait":
		return analysis.ExprString(sel.X) + ".Wait()"
	}
	if id, ok := sel.X.(*ast.Ident); ok && id.Name == "http" {
		return "net/http call http." + sel.Sel.Name
	}
	return ""
}

func (s *scanner) blocking(pos token.Pos, what string) {
	if len(s.held) == 0 {
		return
	}
	var locks []string
	for recv, at := range s.held {
		locks = append(locks, recv+" (locked at line "+itoa(at.Line)+")")
	}
	s.pass.Reportf(pos, "blocking %s while %s held: move it outside the critical section or annotate //llmdm:allow lockscope",
		what, strings.Join(locks, ", "))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
