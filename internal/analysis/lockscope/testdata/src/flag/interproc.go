// Fixture: calls under a lock into functions whose summaries block —
// one call-graph level deep, the same serialization bug one frame down.
package fixture

import (
	"sync"
	"time"
)

type store struct {
	mu  sync.Mutex
	out chan int
}

func (st *store) flushSlowly() {
	time.Sleep(time.Millisecond)
}

func (st *store) publish(v int) {
	st.out <- v
}

func callsSleeperUnderLock(st *store) {
	st.mu.Lock()
	st.flushSlowly() // want "blocking call into fixture\.store\.flushSlowly \(which does time\.Sleep\)"
	st.mu.Unlock()
}

func callsSenderUnderLock(st *store, v int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.publish(v) // want "blocking call into fixture\.store\.publish \(which does channel send\)"
}
