// Fixture: blocking operations inside critical sections are reported —
// including on the main path after an early-return unlock guard, the
// shape a source-order scanner would miss.
package fixture

import (
	"net/http"
	"sync"
	"time"
)

type server struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	ch     chan int
	closed bool
	model  completer
	wg     sync.WaitGroup
}

type completer interface{ Complete(int) int }

func sendUnderLock(s *server) {
	s.mu.Lock()
	s.ch <- 1 // want "blocking channel send while s\.mu"
	s.mu.Unlock()
}

func receiveUnderLock(s *server) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "blocking channel receive while s\.mu"
}

func sleepUnderDeferredUnlock(s *server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "blocking time\.Sleep while s\.mu"
}

func modelCallUnderRLock(s *server) {
	s.rw.RLock()
	s.model.Complete(1) // want "blocking model call \.Complete while s\.rw"
	s.rw.RUnlock()
}

func waitUnderLock(s *server) {
	s.mu.Lock()
	s.wg.Wait() // want "blocking s\.wg\.Wait\(\) while s\.mu"
	s.mu.Unlock()
}

func httpUnderLock(s *server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	http.Get("http://example.invalid") // want "blocking net/http call http\.Get while s\.mu"
}

// The guard branch unlocks and returns; the main path still holds the
// lock at the select — branch-sensitive tracking must not let the
// guard's release mask it.
func guardedSendUnderLock(s *server, done chan struct{}) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	select {
	case s.ch <- 1: // want "blocking channel send while s\.mu"
		s.mu.Unlock()
	case <-done: // want "blocking channel receive while s\.mu"
		s.mu.Unlock()
	}
}
