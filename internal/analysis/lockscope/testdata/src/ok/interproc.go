// Fixture: calls under a lock into summarized callees that are fine —
// a callee that does no blocking work, and a callee whose blocking op
// carries its own //llmdm:allow lockscope justification (the waiver
// covers interprocedural callers too).
package fixture

import "sync"

type registry struct {
	mu    sync.Mutex
	seen  map[string]int
	queue chan string
}

func (r *registry) bump(name string) {
	r.seen[name]++
}

func (r *registry) enqueueBounded(name string) {
	//llmdm:allow lockscope bounded enqueue, capacity proven by the admission gate
	r.queue <- name
}

func recordUnderLock(r *registry, name string) {
	r.mu.Lock()
	r.bump(name)
	r.mu.Unlock()
}

func enqueueUnderLock(r *registry, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.enqueueBounded(name)
}
