// Fixture: the accepted shapes — unlock before blocking, non-blocking
// select with default, goroutine bodies as separate units, branch-merged
// releases, and the //llmdm:allow waiver.
package fixture

import "sync"

type server struct {
	mu     sync.Mutex
	ch     chan int
	m      map[string]int
	closed bool
}

func unlockThenSend(s *server) {
	s.mu.Lock()
	s.m["k"] = 1
	s.mu.Unlock()
	s.ch <- 1
}

func nonBlockingTrySend(s *server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

// The spawn itself never blocks, and the goroutine body runs without the
// lock — it is analyzed as its own unit.
func spawnUnderLock(s *server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1
	}()
}

// Every select arm releases before its blocking work; after the merge no
// lock is held.
func armsRelease(s *server, done chan struct{}) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.m["k"] = 1
	s.mu.Unlock()
	select {
	case s.ch <- 1:
	case <-done:
	}
}

// Deliberate, justified, and waived.
func annotatedSend(s *server) {
	s.mu.Lock()
	s.ch <- 1 //llmdm:allow lockscope bounded enqueue under the close gate is the design
	s.mu.Unlock()
}
