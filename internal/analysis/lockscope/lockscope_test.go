package lockscope_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockscope"
)

func TestFlagsBlockingUnderLock(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "flag"), lockscope.Analyzer)
}

func TestAcceptsReleasedAndAnnotated(t *testing.T) {
	analysistest.RunClean(t, filepath.Join("testdata", "src", "ok"), lockscope.Analyzer)
}
