//llmdm:pkgpath repro/internal/proxy

// Fixture: serving-path goroutines must contain panics and carry a
// cancellation/stop signal.
package fixture

func bareMethodSpawn(s *server) {
	go s.run() // want "bare `go s\.run\(\.\.\.\)`"
}

func missingRecovery(ch chan int, done chan struct{}) {
	go func() { // want "goroutine without panic recovery"
		<-done
		ch <- 1
	}()
}

// Resolvable, but the summary proves neither recovery nor a stop
// signal: the named spawn stays flagged.
func unprovenNamedSpawn(ch chan int) {
	go pumpNaked(ch) // want "bare `go pumpNaked\(\.\.\.\)`"
}

func pumpNaked(ch chan int) {
	for {
		ch <- 1
	}
}

func missingSignal(ch chan int) {
	go func() { // want "goroutine carries no context or stop/done signal"
		defer func() {
			if r := recover(); r != nil {
				use(r)
			}
		}()
		ch <- 1
	}()
}
