//llmdm:pkgpath repro/internal/proxy

// Fixture: the accepted spawns — recovery plus a ctx/stop signal, or an
// explicit waiver for a deliberate bare spawn.
package fixture

import "context"

func managedSpawn(ctx context.Context, ch chan int) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				use(r)
			}
		}()
		select {
		case ch <- 1:
		case <-ctx.Done():
		}
	}()
}

func stopChannelSpawn(ch chan int, stopCh chan struct{}) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				use(r)
			}
		}()
		select {
		case ch <- 1:
		case <-stopCh:
		}
	}()
}

func waivedBareSpawn(s *server) {
	//llmdm:allow gospawn fire-and-forget warmup, bounded by process lifetime
	go s.warmup()
}

// A named spawn is accepted when the callee's summary proves both
// properties: deferred recover plus a ctx/stop reference.
func provenNamedSpawn(ctx context.Context, ch chan int) {
	go pumpManaged(ctx, ch)
}

func pumpManaged(ctx context.Context, ch chan int) {
	defer func() {
		if r := recover(); r != nil {
			use(r)
		}
	}()
	for {
		select {
		case ch <- 1:
		case <-ctx.Done():
			return
		}
	}
}
