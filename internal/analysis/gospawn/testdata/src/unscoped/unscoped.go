// Fixture: packages off the serving path are not governed — a bare
// spawn here is accepted without annotation. (No //llmdm:pkgpath pin, so
// the fixture loads under a neutral import path.)
package fixture

func bareSpawnOffServingPath(s *server) {
	go s.run()
}
