package gospawn_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/gospawn"
)

func TestFlagsUnmanagedSpawns(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "flag"), gospawn.Analyzer)
}

func TestAcceptsManagedAndWaivedSpawns(t *testing.T) {
	analysistest.RunClean(t, filepath.Join("testdata", "src", "ok"), gospawn.Analyzer)
}

func TestIgnoresPackagesOffServingPath(t *testing.T) {
	analysistest.RunClean(t, filepath.Join("testdata", "src", "unscoped"), gospawn.Analyzer)
}
