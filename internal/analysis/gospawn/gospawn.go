// Package gospawn governs goroutine creation in serving-path packages.
//
// A detached goroutine in the serving stack is a liability twice over:
// an un-recovered panic tears down the whole proxy process, and a
// goroutine with no context or stop signal can neither be cancelled nor
// drained on shutdown. PR 2/3 hand-audited these properties; this
// analyzer pins them.
//
// In the serving-path packages (proxy, sched, resilience, obs, llm,
// cascade, semcache), every `go` statement must either:
//
//   - spawn a function literal that (a) installs a deferred recover()
//     and (b) references a context or stop/done channel, or
//   - be inside the managed spawn helper obs.Go (whose single `go` site
//     carries the annotation), with callers using obs.Go instead of a
//     bare `go`, or
//   - carry //llmdm:allow gospawn with a reason.
//
// `go someFunc()` spawns (no literal) resolve through the program's
// call graph: if the spawned function's summary proves both properties —
// it installs a deferred recover() AND references a ctx/stop signal —
// the spawn is accepted. Unresolvable or unproven named spawns are
// flagged as before: the site must go through obs.Go or be annotated.
package gospawn

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the gospawn rule.
var Analyzer = &analysis.Analyzer{
	Name: "gospawn",
	Doc: "serving-path `go` statements must recover panics and carry a ctx/stop signal, " +
		"or go through the managed spawn helper obs.Go",
	Run: run,
}

// servingPath lists the packages under the rule.
var servingPath = []string{
	"repro/internal/proxy",
	"repro/internal/sched",
	"repro/internal/resilience",
	"repro/internal/obs",
	"repro/internal/llm",
	"repro/internal/core/cascade",
	"repro/internal/core/semcache",
}

func run(pass *analysis.Pass) error {
	covered := false
	for _, p := range servingPath {
		if pass.PathHasPrefix(p) {
			covered = true
			break
		}
	}
	if !covered {
		return nil
	}
	pass.EachFile(func(name string, f *ast.File) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fi := pass.Prog.FuncOf(pass.Pkg, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := g.Call.Fun.(*ast.FuncLit)
				if !ok {
					checkNamedSpawn(pass, fi, g)
					return true
				}
				if !hasDeferredRecover(lit.Body) {
					pass.Reportf(g.Pos(),
						"goroutine without panic recovery: install `defer func() { recover() ... }()` or spawn through obs.Go")
				}
				if !referencesCtxOrStop(lit) {
					pass.Reportf(g.Pos(),
						"goroutine carries no context or stop/done signal: it can neither be cancelled nor drained on shutdown")
				}
				return true
			})
		}
	})
	return nil
}

// checkNamedSpawn handles `go fn()` with no literal: the body is out of
// sight locally, but the call graph isn't — if fn's summary proves it
// both recovers panics and references a ctx/stop signal, the spawn
// carries its own containment and is accepted.
func checkNamedSpawn(pass *analysis.Pass, fi *analysis.FuncInfo, g *ast.GoStmt) {
	if fi != nil {
		if callee := pass.Prog.Resolve(fi, g.Call); callee != nil {
			sum := pass.Prog.Summary(callee)
			if sum != nil && sum.Recovers && sum.RefsStop {
				return
			}
		}
	}
	pass.Reportf(g.Pos(),
		"bare `go %s(...)` without provable panic recovery and stop signal: spawn through the managed helper obs.Go (panic containment) or annotate //llmdm:allow gospawn",
		analysis.ExprString(g.Call.Fun))
}

// hasDeferredRecover reports whether body contains a defer whose
// function (literal or named) mentions recover().
func hasDeferredRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
						found = true
					}
				}
				return true
			})
		}
		return true
	})
	return found
}

// referencesCtxOrStop reports whether the goroutine body (or the values
// it closes over in the call) mentions a context or a stop/done/quit
// channel — the signals that make it cancellable/drainable.
func referencesCtxOrStop(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if isCtxOrStopName(n.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if isCtxOrStopName(n.Sel.Name) {
				found = true
			}
		}
		return true
	})
	return found
}

func isCtxOrStopName(name string) bool {
	switch name {
	case "ctx", "context", "stop", "done", "quit", "closing", "closed":
		return true
	}
	// upCtx, reqCtx, batchCtx, stopCh, doneCh ...
	for _, frag := range []string{"Ctx", "ctx", "Stop", "stop", "Done", "done", "Quit", "quit"} {
		if len(name) > len(frag) && strings.Contains(name, frag) {
			return true
		}
	}
	return false
}
