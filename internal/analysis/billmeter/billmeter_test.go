package billmeter_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/billmeter"
)

func TestFlagsDroppedSpend(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "flag"), billmeter.Analyzer)
}

func TestAcceptsSpendFlows(t *testing.T) {
	analysistest.RunClean(t, filepath.Join("testdata", "src", "ok"), billmeter.Analyzer)
}

func TestExemptsAccountingLayers(t *testing.T) {
	analysistest.RunClean(t, filepath.Join("testdata", "src", "exempt"), billmeter.Analyzer)
}
