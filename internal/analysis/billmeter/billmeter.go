// Package billmeter enforces spend accounting at model call sites.
//
// Billing is load-bearing in this reproduction (the paper's cost results
// are the point), and PR 2's chaos experiment cross-checks the proxy's
// spend counter against the models' own meters to the micro-dollar. That
// guarantee dies the moment one call site drops a response's Cost on the
// floor.
//
// The rule: in library code outside the serving layers that ARE the
// accounting flow (internal/llm, internal/core/cascade, internal/sched,
// internal/proxy), every function that calls a model — a method named
// Complete, GenerateBatch, or a streaming open (GenerateStream /
// CompleteStream, whose chunks each carry incremental cost) — must
// visibly do one of:
//
//   - read spend off the result or a meter in the same function
//     (a .Cost / .TotalCost / .Spend / .TotalSpend / .Meter / .Stats /
//     .Escalations selector — for streams, summing chunk .Cost or
//     reading the settled .Result / .Final / .Answer response), or
//   - propagate the response (or the open stream) to its caller (return
//     the call's results, directly or via the assigned variables), or
//   - route through the scheduler (.Submit), whose flush path bills, or
//   - carry an //llmdm:allow billmeter annotation with a reason.
//
// Method values count: `f := cli.Complete` binds the meter duty to f,
// and every later `f(...)` is checked like a direct .Complete call (a
// settlement read through a bound accessor — `settle := rs.Result;
// settle()` — likewise counts as reading spend).
//
// Package main is exempt: commands and examples consume library APIs
// that already meter.
package billmeter

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the billmeter rule.
var Analyzer = &analysis.Analyzer{
	Name: "billmeter",
	Doc: "every Complete/GenerateBatch/GenerateStream/CompleteStream call site outside internal/llm, " +
		"cascade, sched and proxy must record spend (Cost/Meter/Spend use, or a stream's settled " +
		"Result/Final/Answer) or propagate the response to its caller",
	Run: run,
}

// exempt are the layers that implement the accounting flow itself.
var exempt = []string{
	"repro/internal/llm",
	"repro/internal/core/cascade",
	"repro/internal/sched",
	"repro/internal/proxy",
}

// spendSelectors are the names whose appearance as a selector shows the
// function touching spend or a meter.
var spendSelectors = map[string]bool{
	"Cost":        true,
	"TotalCost":   true,
	"Spend":       true,
	"TotalSpend":  true,
	"Meter":       true,
	"Meters":      true,
	"ResetMeter":  true,
	"Stats":       true,
	"Escalations": true,
	// Stream settlement accessors: each returns the fully billed response
	// (llm.Stream.Final, cascade.RunStream.Result, proxy.Stream.Answer),
	// so reading one is reading spend.
	"Final":  true,
	"Result": true,
	"Answer": true,
}

// modelCallNames are the method names that move money: request/response
// completions and streaming opens (whose chunks carry incremental cost).
var modelCallNames = map[string]bool{
	"Complete":       true,
	"GenerateBatch":  true,
	"GenerateStream": true,
	"CompleteStream": true,
}

func run(pass *analysis.Pass) error {
	if pass.IsMain() {
		return nil
	}
	for _, e := range exempt {
		if pass.PathHasPrefix(e) {
			return nil
		}
	}
	pass.EachFile(func(name string, f *ast.File) {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	})
	return nil
}

// checkFunc analyzes one function: find the model calls, then look for
// any of the accepted spend flows.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	var modelCalls []*ast.CallExpr
	hasSpendFlow := false
	// Identifiers that received a model call's results.
	assigned := map[string]bool{}
	// Identifiers appearing in return statements.
	returned := map[string]bool{}
	returnsCallDirectly := false
	// Method values bound from a model call: `f := cli.Complete` makes
	// every later `f(...)` a model call — the meter duty travels with the
	// bound method, and before this tracking such calls escaped the rule
	// entirely (an Ident-funned call looked like any helper).
	boundModel := map[string]bool{}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.SelectorExpr:
				switch {
				case modelCallNames[fun.Sel.Name]:
					modelCalls = append(modelCalls, n)
				case fun.Sel.Name == "Submit":
					hasSpendFlow = true // scheduler path bills in its flush
				case spendSelectors[fun.Sel.Name]:
					hasSpendFlow = true
				}
			case *ast.Ident:
				if boundModel[fun.Name] {
					modelCalls = append(modelCalls, n)
				}
			}
		case *ast.SelectorExpr:
			if spendSelectors[n.Sel.Name] {
				hasSpendFlow = true
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if sel, ok := n.Rhs[i].(*ast.SelectorExpr); ok && modelCallNames[sel.Sel.Name] {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						boundModel[id.Name] = true
					}
				}
			}
			if rhsHasModelCall(n.Rhs, boundModel) {
				for _, lhs := range n.Lhs {
					// The error result never carries spend: `resp, err := ...;
					// return err` is a drop, not a propagation.
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" && !strings.HasPrefix(id.Name, "err") {
						assigned[id.Name] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if isModelCall(res, boundModel) {
					returnsCallDirectly = true
				}
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						returned[id.Name] = true
					}
					return true
				})
			}
		}
		return true
	})

	if len(modelCalls) == 0 || hasSpendFlow || returnsCallDirectly {
		return
	}
	for name := range assigned {
		if returned[name] {
			return // response propagated to the caller
		}
	}
	for _, call := range modelCalls {
		pass.Reportf(call.Pos(),
			"model call %s: response spend is neither recorded (no Cost/Meter/Spend use in %s) nor propagated to the caller — bill a meter or return the response",
			callName(call), fn.Name.Name)
	}
}

// callName renders the model call for the diagnostic: ".Complete" for a
// direct method call, the bound name for a method-value call.
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return "." + fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return analysis.ExprString(call.Fun)
}

func rhsHasModelCall(rhs []ast.Expr, bound map[string]bool) bool {
	for _, e := range rhs {
		if isModelCall(e, bound) {
			return true
		}
	}
	return false
}

func isModelCall(e ast.Expr, bound map[string]bool) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return modelCallNames[fun.Sel.Name]
	case *ast.Ident:
		return bound[fun.Name]
	}
	return false
}
