// Fixture: streaming opens whose chunk costs are neither summed nor
// settled nor propagated are dropped spend, exactly like a discarded
// Complete response.
package fixture

func dropsStream(m model, req request) error {
	s, err := m.GenerateStream(nil, req) // want "model call \.GenerateStream: response spend is neither recorded"
	if err != nil {
		return err
	}
	for {
		ch, rerr := s.Recv()
		if rerr != nil {
			return nil
		}
		use(ch.Text)
	}
}

func discardsRunStream(c cascadeRunner, req request) {
	_, _ = c.CompleteStream(nil, req) // want "model call \.CompleteStream: response spend is neither recorded"
}
