// Fixture: model calls whose response spend is neither recorded nor
// propagated are reported. Returning only the error is a drop.
package fixture

func dropsResponse(m model, req request) error {
	resp, err := m.Complete(nil, req) // want "model call \.Complete: response spend is neither recorded"
	if err != nil {
		return err
	}
	use(resp.Text)
	return nil
}

func discardsBatch(m model, reqs []request) {
	_, _ = m.GenerateBatch(nil, reqs) // want "model call \.GenerateBatch: response spend is neither recorded"
}
