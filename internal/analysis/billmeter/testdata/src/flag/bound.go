// Fixture: model calls through bound method values are still model
// calls — `f := m.Complete` carries the meter duty to every `f(...)`,
// and dropping that call's response is the same dropped spend.
package fixture

func dropsThroughBoundMethod(m model, req request) error {
	f := m.Complete
	resp, err := f(nil, req) // want "model call f: response spend is neither recorded"
	if err != nil {
		return err
	}
	use(resp.Text)
	return nil
}

func discardsThroughBoundBatch(m model, reqs []request) {
	batch := m.GenerateBatch
	_, _ = batch(nil, reqs) // want "model call batch: response spend is neither recorded"
}
