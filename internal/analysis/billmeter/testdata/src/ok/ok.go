// Fixture: the accepted spend flows — read the cost, bill a meter,
// propagate the response, route through the scheduler, or carry an
// explicit waiver.
package fixture

func readsCost(m model, req request) error {
	resp, err := m.Complete(nil, req)
	if err != nil {
		return err
	}
	addSpend(resp.Cost)
	return nil
}

func billsMeter(m model, req request) error {
	resp, err := m.Complete(nil, req)
	if err != nil {
		return err
	}
	use(resp.Text)
	use(m.Meter().TotalSpend)
	return nil
}

func returnsResponseDirectly(m model, req request) (response, error) {
	return m.Complete(nil, req)
}

func propagatesAssigned(m model, req request) (response, error) {
	resp, err := m.Complete(nil, req)
	resp.Text = clean(resp.Text)
	return resp, err
}

func routesThroughScheduler(s scheduler, req request) error {
	_, err := s.Submit(nil, "tier", req)
	return err
}

func waived(m model, req request) {
	//llmdm:allow billmeter probe call, spend asserted by the harness meter
	resp, err := m.Complete(nil, req)
	use(resp, err)
}
