// Fixture: the accepted spend flows for streaming calls — sum the
// chunks' incremental costs, read the settled response (Result / Final
// / Answer), or propagate the open stream to the caller.
package fixture

func sumsChunkCosts(m model, req request) error {
	s, err := m.GenerateStream(nil, req)
	if err != nil {
		return err
	}
	var total int64
	for {
		ch, rerr := s.Recv()
		if rerr != nil {
			break
		}
		total += int64(ch.Cost)
	}
	addSpend(total)
	return nil
}

func readsSettledResult(c cascadeRunner, req request) error {
	rs, err := c.CompleteStream(nil, req)
	if err != nil {
		return err
	}
	drain(rs)
	resp, _, err := rs.Result()
	use(resp)
	return err
}

func readsSettledAnswer(p proxyLike, req request) error {
	s, err := p.CompleteStream(nil, req)
	if err != nil {
		return err
	}
	drain(s)
	ans, err := s.Answer()
	use(ans)
	return err
}

func returnsStreamDirectly(m model, req request) (stream, error) {
	return m.GenerateStream(nil, req)
}

func propagatesAssignedStream(m model, req request) (stream, error) {
	s, err := m.GenerateStream(nil, req)
	return s, err
}
