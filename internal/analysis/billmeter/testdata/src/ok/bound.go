// Fixture: bound method values with the spend visibly flowing — the
// cost read, the response propagated, or a stream settled through a
// bound accessor (`settle := rs.Result; settle()`).
package fixture

func boundButBilled(m model, req request) error {
	f := m.Complete
	resp, err := f(nil, req)
	if err != nil {
		return err
	}
	addSpend(resp.Cost)
	return nil
}

func boundPropagated(m model, req request) (response, error) {
	f := m.Complete
	return f(nil, req)
}

func settlesThroughBoundResult(c cascadeRunner, req request) error {
	rs, err := c.CompleteStream(nil, req)
	if err != nil {
		return err
	}
	settle := rs.Result
	resp, _, err := settle()
	use(resp)
	return err
}
