//llmdm:pkgpath repro/internal/sched

// Fixture: the layers that implement the accounting flow itself are
// exempt — the scheduler's flush path is where billing happens.
package fixture

func flush(m model, reqs []request) {
	resps, err := m.GenerateBatch(nil, reqs)
	use(resps, err)
}
