package reslifecycle_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/reslifecycle"
)

func TestFlagsLeakedObligations(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "flag"), reslifecycle.Analyzer)
}

func TestAcceptsDischargedObligations(t *testing.T) {
	analysistest.RunClean(t, filepath.Join("testdata", "src", "ok"), reslifecycle.Analyzer)
}

func TestCrossPackageCreators(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "crosspkg"), reslifecycle.Analyzer)
}

func TestWaiverIsHonoredAndLoadBearing(t *testing.T) {
	dir := filepath.Join("testdata", "src", "waiver")
	analysistest.RunClean(t, dir, reslifecycle.Analyzer)

	pkg, err := analysis.LoadDir(dir, "fixture")
	if err != nil {
		t.Fatal(err)
	}
	diags := analysistest.Findings(t, pkg, reslifecycle.Analyzer, true)
	if len(diags) != 1 {
		t.Fatalf("IgnoreAnnotations should resurface the waived creation, got %d diagnostics: %v", len(diags), diags)
	}
}
