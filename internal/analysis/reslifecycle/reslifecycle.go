// Package reslifecycle enforces release obligations on every path.
//
// The serving path hands out values that MUST be given back: open
// streams (llm.Stream, cascade.RunStream, proxy.Stream — abandoning one
// mid-error leaks the upstream connection and, for the cascade, the
// billing settlement), pooled scratch vectors (embed TextScratch /
// ReleaseScratch — a dropped scratch silently shrinks the pool), a
// scheduler (Close joins its flush goroutines), and net/http response
// bodies. PR 5's analyzers cannot see a leak that only happens on the
// early-return error path three branches in; this analyzer can, because
// it tracks obligations branch-sensitively the same way lockscope
// tracks held locks.
//
// An obligation is born when a call's result carries a tracked type or
// name (the seed tables below — resolution through the Program layer's
// call graph, so a wrapper whose declared result is llm.Stream is a
// creator too). It dies when the value is:
//
//   - released: x.Close() / x.Stop() (directly, deferred, or via a
//     bound method value f := x.Close; defer f()); scratch vectors via
//     ReleaseScratch(x) or any Release*-named call taking x; response
//     bodies via x.Body.Close() or x.Close();
//   - transferred: returned to the caller, stored into a struct field,
//     map, slice or global, sent on a channel, captured by a function
//     literal, or (for streams/closers/bodies, NOT scratch vectors —
//     passing a scratch to a consumer is use, not release) passed as a
//     call argument;
//   - invalidated: the error-path guard of its own creation
//     (`x, err := open(); if err != nil { ... }` — x is dead in the
//     error arm), or an explicit `x == nil` / `x != nil` test.
//
// Any path reaching a return or the end of the function with a live
// obligation is a leak, reported at the creation site.
//
// Escape hatch: //llmdm:allow reslifecycle <reason> at the creation.
package reslifecycle

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the reslifecycle rule.
var Analyzer = &analysis.Analyzer{
	Name: "reslifecycle",
	Doc: "obligation-carrying values (open streams, pooled scratch vectors, schedulers, response " +
		"bodies) must be released, returned, stored or handed off on every path, including early " +
		"returns and error paths",
	Run: run,
}

// Obligation kinds.
const (
	kindStream  = "stream"  // released by Close/Stop, transferable by arg-pass
	kindCloser  = "closer"  // same, for Close()-bearing subsystems
	kindScratch = "scratch" // released ONLY via Release*-named calls
	kindBody    = "body"    // http response: x.Body.Close()
)

// typeSeeds: canonical result type → obligation kind + the release the
// diagnostic names.
var typeSeeds = map[string]struct{ kind, release string }{
	"repro/internal/llm.Stream":             {kindStream, "Close"},
	"repro/internal/core/cascade.RunStream": {kindStream, "Close"},
	"repro/internal/proxy.Stream":           {kindStream, "Close"},
	"repro/internal/sched.Scheduler":        {kindCloser, "Close"},
	"net/http.Response":                     {kindBody, "Body.Close"},
}

// nameSeeds: callee method/function name → obligation, for creators
// whose result types the syntactic layer cannot see (interface-typed
// locals, pooled buffers).
var nameSeeds = map[string]struct{ kind, release string }{
	"TextScratch": {kindScratch, "ReleaseScratch"},
}

// httpOpenNames: net/http functions returning *http.Response.
var httpOpenNames = map[string]bool{
	"Get": true, "Post": true, "Head": true, "PostForm": true, "Do": true,
}

// releaseNames: method names that satisfy a Close-style obligation.
var releaseNames = map[string]bool{"Close": true, "Stop": true}

func run(pass *analysis.Pass) error {
	pass.EachFile(func(name string, f *ast.File) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fi := pass.Prog.FuncOf(pass.Pkg, fd)
			if fi == nil {
				continue
			}
			checkFunc(pass, fi)
		}
	})
	return nil
}

// obligation is one live release duty bound to a local variable.
type obligation struct {
	name    string // variable holding the value
	kind    string
	release string
	pos     token.Pos // creation site (diagnostic anchor)
	errVar  string    // paired error result name ("" when none)
	what    string    // creator description for the message
}

// sink collects leaks across forked branch trackers, deduped per
// obligation (one creation site reports once however many exits leak).
type sink struct {
	pass     *analysis.Pass
	reported map[*obligation]bool
}

func (s *sink) leak(o *obligation, at token.Pos) {
	if s.reported[o] {
		return
	}
	s.reported[o] = true
	site := positionString(s.pass.Pkg.Fset.Position(at))
	s.pass.Reportf(o.pos,
		"%s carries a %s obligation that is not released on every path "+
			"(leaks at %s) — release it, hand it off, or annotate //llmdm:allow reslifecycle",
		o.what, o.release, site)
}

func positionString(p token.Position) string {
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + itoa(p.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func checkFunc(pass *analysis.Pass, fi *analysis.FuncInfo) {
	t := &tracker{
		pass: pass, fi: fi,
		live: map[string]*obligation{},
		sink: &sink{pass: pass, reported: map[*obligation]bool{}},
	}
	t.stmts(fi.Decl.Body.List)
	t.exit(fi.Decl.Body.End(), nil)
}

// tracker is the branch-sensitive obligation scanner. It mirrors
// lockscope's may-hold discipline: clone per arm, drop diverging arms,
// union survivors — so "live" means live on SOME path, which is exactly
// leak semantics.
type tracker struct {
	pass *analysis.Pass
	fi   *analysis.FuncInfo
	live map[string]*obligation
	sink *sink
}

func (t *tracker) fork(pre map[string]*obligation, drop map[string]bool) *tracker {
	live := cloneLive(pre)
	for name := range drop {
		delete(live, name)
	}
	return &tracker{pass: t.pass, fi: t.fi, live: live, sink: t.sink}
}

// exit flags every live obligation not escaping via ret (a return
// statement's results, or nil for fall-off-the-end).
func (t *tracker) exit(at token.Pos, ret *ast.ReturnStmt) {
	escaping := map[string]bool{}
	if ret != nil {
		for _, res := range ret.Results {
			ast.Inspect(res, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					escaping[id.Name] = true
				}
				return true
			})
		}
	}
	for name, o := range t.live {
		if !escaping[name] {
			t.sink.leak(o, at)
		}
	}
}

func (t *tracker) stmts(list []ast.Stmt) {
	for _, st := range list {
		t.stmt(st)
	}
}

func (t *tracker) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case nil:
	case *ast.AssignStmt:
		t.assign(st)
	case *ast.ExprStmt:
		t.expr(st.X)
	case *ast.DeferStmt:
		t.deferred(st.Call)
	case *ast.GoStmt:
		// The goroutine captures what it references: hand-off. A literal
		// body is additionally its own obligation scope.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			t.scanExpr(lit, false)
			for _, arg := range st.Call.Args {
				t.escapeIdents(arg)
			}
		} else {
			t.escapeIdents(st.Call)
		}
	case *ast.SendStmt:
		t.escapeIdents(st.Value)
	case *ast.ReturnStmt:
		for _, res := range st.Results {
			t.returnExpr(res)
		}
		t.exit(st.Pos(), st)
		t.live = map[string]*obligation{} // path ends here
	case *ast.IfStmt:
		t.stmt(st.Init)
		t.exprNoEscape(st.Cond)
		t.branchIf(st)
	case *ast.ForStmt:
		t.stmt(st.Init)
		if st.Cond != nil {
			t.exprNoEscape(st.Cond)
		}
		t.stmt(st.Post)
		t.arms([][]ast.Stmt{st.Body.List}, true)
	case *ast.RangeStmt:
		t.exprNoEscape(st.X)
		t.arms([][]ast.Stmt{st.Body.List}, true)
	case *ast.BlockStmt:
		t.stmts(st.List)
	case *ast.SwitchStmt:
		t.stmt(st.Init)
		t.arms(caseArms(st.Body), !hasDefault(st.Body))
	case *ast.TypeSwitchStmt:
		t.stmt(st.Init)
		t.arms(caseArms(st.Body), !hasDefault(st.Body))
	case *ast.SelectStmt:
		var arms [][]ast.Stmt
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				t.commStmt(cc.Comm)
			}
			arms = append(arms, cc.Body)
		}
		t.arms(arms, false)
	case *ast.LabeledStmt:
		t.stmt(st.Stmt)
	case *ast.DeclStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if vs, ok := n.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					t.expr(v)
				}
			}
			return true
		})
	}
}

// returnExpr scans one return result: a creator call returned directly
// is propagation to the caller, not a leak.
func (t *tracker) returnExpr(e ast.Expr) {
	if call, ok := stripParens(e).(*ast.CallExpr); ok {
		if _, _, _, created := t.creates(call); created {
			for _, arg := range call.Args {
				t.exprNoEscape(arg)
			}
			return
		}
	}
	t.exprNoEscape(e)
}

// commStmt handles a select comm clause without the branch machinery.
func (t *tracker) commStmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.SendStmt:
		t.escapeIdents(st.Value)
	case *ast.AssignStmt:
		t.assign(st)
	case *ast.ExprStmt:
		t.expr(st.X)
	}
}

// branchIf runs the two arms with error-guard awareness.
func (t *tracker) branchIf(st *ast.IfStmt) {
	thenDrop, elseDrop := t.guardDrops(st.Cond)
	pre := cloneLive(t.live)

	thenT := t.fork(pre, thenDrop)
	thenT.stmts(st.Body.List)
	thenTerm := terminates(st.Body.List)

	merged := map[string]*obligation{}
	if !thenTerm {
		for k, v := range thenT.live {
			merged[k] = v
		}
	}
	if st.Else == nil {
		for k, v := range pre {
			if !elseDrop[k] {
				if _, ok := merged[k]; !ok {
					merged[k] = v
				}
			}
		}
	} else {
		elseT := t.fork(pre, elseDrop)
		elseT.stmts([]ast.Stmt{st.Else})
		if !terminatesStmt(st.Else) {
			for k, v := range elseT.live {
				if _, ok := merged[k]; !ok {
					merged[k] = v
				}
			}
		}
	}
	t.live = merged
}

// guardDrops classifies an if condition: `err != nil` invalidates
// err-paired obligations in the then arm (that IS the error path, the
// value is nil there), `err == nil` in the fall-through/else, and
// likewise nil tests on the obligation variable itself.
func (t *tracker) guardDrops(cond ast.Expr) (thenDrop, elseDrop map[string]bool) {
	thenDrop, elseDrop = map[string]bool{}, map[string]bool{}
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return
	}
	id, ok := nilComparand(bin)
	if !ok {
		return
	}
	for name, o := range t.live {
		pairedErr := o.errVar != "" && o.errVar == id
		self := name == id
		if !pairedErr && !self {
			continue
		}
		switch {
		case bin.Op == token.NEQ && pairedErr: // if err != nil: value dead in then
			thenDrop[name] = true
		case bin.Op == token.EQL && pairedErr: // if err == nil: value dead in else
			elseDrop[name] = true
		case bin.Op == token.NEQ && self: // if x != nil: nothing to release in else
			elseDrop[name] = true
		case bin.Op == token.EQL && self: // if x == nil: nothing to release in then
			thenDrop[name] = true
		}
	}
	return
}

// nilComparand extracts the ident name from `id OP nil` / `nil OP id`.
func nilComparand(bin *ast.BinaryExpr) (string, bool) {
	if isNil(bin.Y) {
		if id, ok := bin.X.(*ast.Ident); ok {
			return id.Name, true
		}
	}
	if isNil(bin.X) {
		if id, ok := bin.Y.(*ast.Ident); ok {
			return id.Name, true
		}
	}
	return "", false
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// arms runs generic branch arms (for/switch/select) and unions
// surviving states; includePre keeps the not-taken path live.
func (t *tracker) arms(arms [][]ast.Stmt, includePre bool) {
	pre := cloneLive(t.live)
	merged := map[string]*obligation{}
	if includePre {
		for k, v := range pre {
			merged[k] = v
		}
	}
	for _, arm := range arms {
		sub := t.fork(pre, nil)
		sub.stmts(arm)
		if !terminates(arm) {
			for k, v := range sub.live {
				if _, ok := merged[k]; !ok {
					merged[k] = v
				}
			}
		}
	}
	t.live = merged
}

// assign handles creations, releases via bound methods, aliases and
// stores.
func (t *tracker) assign(a *ast.AssignStmt) {
	// Creation: one call RHS whose result carries an obligation.
	if len(a.Rhs) == 1 {
		if call, ok := stripParens(a.Rhs[0]).(*ast.CallExpr); ok {
			if kind, release, what, ok := t.creates(call); ok {
				for _, arg := range call.Args {
					t.exprNoEscape(arg)
				}
				t.bind(a, call, kind, release, what)
				return
			}
		}
	}
	for _, rhs := range a.Rhs {
		// f := x.Close — binding a release method discharges x (the
		// binding exists to be called; analysistest keeps this honest).
		if sel, ok := stripParens(rhs).(*ast.SelectorExpr); ok && releaseNames[sel.Sel.Name] {
			if id, ok := sel.X.(*ast.Ident); ok {
				if _, live := t.live[id.Name]; live {
					delete(t.live, id.Name)
					continue
				}
			}
		}
		t.expr(rhs)
	}
	for i, lhs := range a.Lhs {
		switch l := lhs.(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			if i < len(a.Rhs) {
				if id, ok := stripParens(a.Rhs[i]).(*ast.Ident); ok {
					if o, live := t.live[id.Name]; live {
						// Alias: both names reach the value; releasing either
						// suffices, so track under the new name too.
						t.live[l.Name] = o
						continue
					}
				}
			}
			// Rebinding a name forgets its old obligation only when it was
			// the same value being nil-ed out after an explicit release —
			// otherwise keep the duty alive under its obligation identity.
			if o, live := t.live[l.Name]; live && o.name == l.Name {
				// Overwritten while live: the old value is unreachable now.
				t.sink.leak(o, a.Pos())
			}
			delete(t.live, l.Name)
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			// Store into a field/map/slice/pointer: ownership escapes.
			if i < len(a.Rhs) {
				t.escapeIdents(a.Rhs[i])
			}
			_ = l
		}
	}
}

// bind attaches a new obligation to the assignment's value LHS.
func (t *tracker) bind(a *ast.AssignStmt, call *ast.CallExpr, kind, release, what string) {
	errVar := ""
	var valueIdent *ast.Ident
	allFields := true
	for _, lhs := range a.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue // field/index target: escaped at birth
		}
		allFields = false
		if strings.HasPrefix(id.Name, "err") {
			errVar = id.Name
			continue
		}
		if id.Name != "_" && valueIdent == nil {
			valueIdent = id
		}
	}
	if allFields {
		return // s.stream, s.err = open(): stored, not ours to track
	}
	if valueIdent == nil {
		// `_, err := open()` — deliberate discard still leaks the value
		// for kinds with no finalizer to save them.
		if kind == kindStream || kind == kindScratch {
			o := &obligation{kind: kind, release: release, pos: call.Pos(), what: what}
			t.sink.leak(o, call.Pos())
		}
		return
	}
	t.live[valueIdent.Name] = &obligation{
		name: valueIdent.Name, kind: kind, release: release,
		pos: call.Pos(), errVar: errVar, what: what,
	}
}

// creates classifies a call as an obligation creator.
func (t *tracker) creates(call *ast.CallExpr) (kind, release, what string, ok bool) {
	if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
		if s, hit := nameSeeds[sel.Sel.Name]; hit {
			return s.kind, s.release, "scratch vector from ." + sel.Sel.Name, true
		}
		if id, isID := sel.X.(*ast.Ident); isID && id.Name == "http" && httpOpenNames[sel.Sel.Name] {
			return kindBody, "Body.Close", "http response from http." + sel.Sel.Name, true
		}
	}
	callee := t.pass.Prog.Resolve(t.fi, call)
	if callee == nil || len(callee.Results) == 0 {
		return "", "", "", false
	}
	if s, hit := typeSeeds[callee.Results[0]]; hit {
		return s.kind, s.release, shortType(callee.Results[0]) + " from " + callee.String(), true
	}
	return "", "", "", false
}

func shortType(key string) string {
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		key = key[i+1:]
	}
	return key
}

// deferred applies a deferred call: releases discharge for the whole
// function (defers run at every exit).
func (t *tracker) deferred(call *ast.CallExpr) {
	if t.releaseIn(call) {
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				t.releaseIn(c)
			}
			return true
		})
		t.litScope(lit)
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok && len(call.Args) == 0 {
		// defer f() where f was a bound release: discharged at binding.
		_ = id
		return
	}
	t.expr(call)
}

// expr scans an expression for releases, hand-offs and creators whose
// results are dropped on the floor.
func (t *tracker) expr(e ast.Expr) {
	t.scanExpr(e, true)
}

// exprNoEscape scans without treating ident references as hand-offs —
// conditions, range targets and return results read values, they don't
// take custody (returns are handled by exit()).
func (t *tracker) exprNoEscape(e ast.Expr) {
	t.scanExpr(e, false)
}

func (t *tracker) scanExpr(e ast.Expr, escapes bool) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		if t.releaseIn(e) {
			return
		}
		if kind, release, what, ok := t.creates(e); ok {
			if kind == kindStream || kind == kindScratch {
				o := &obligation{kind: kind, release: release, pos: e.Pos(), what: what}
				t.sink.leak(o, e.Pos())
			}
			return
		}
		for _, arg := range e.Args {
			if lit, ok := stripParens(arg).(*ast.FuncLit); ok {
				t.scanExpr(lit, false) // captures escape + own scope
				continue
			}
			if escapes {
				t.escapeArgs(arg)
			} else {
				t.scanExpr(arg, false)
			}
		}
		t.scanExpr(e.Fun, false)
	case *ast.FuncLit:
		// Captured obligations escape into the literal...
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if o, live := t.live[id.Name]; live && o.kind != kindScratch {
					delete(t.live, id.Name)
				}
			}
			return true
		})
		// ...and the literal body is its own obligation scope: a stream
		// opened inside a goroutine must be closed inside it (or escape).
		t.litScope(e)
	case *ast.UnaryExpr:
		t.scanExpr(e.X, escapes)
	case *ast.BinaryExpr:
		t.scanExpr(e.X, false)
		t.scanExpr(e.Y, false)
	case *ast.ParenExpr:
		t.scanExpr(e.X, escapes)
	case *ast.SelectorExpr:
		t.scanExpr(e.X, false)
	case *ast.IndexExpr:
		t.scanExpr(e.X, false)
		t.scanExpr(e.Index, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			t.escapeIdents(el)
		}
	case *ast.TypeAssertExpr:
		t.scanExpr(e.X, false)
	case *ast.StarExpr:
		t.scanExpr(e.X, escapes)
	case *ast.KeyValueExpr:
		t.escapeIdents(e.Value)
	}
}

// litScope analyzes a function literal's body as its own obligation
// scope (fresh live set, shared sink).
func (t *tracker) litScope(lit *ast.FuncLit) {
	sub := &tracker{pass: t.pass, fi: t.fi, live: map[string]*obligation{}, sink: t.sink}
	sub.stmts(lit.Body.List)
	sub.exit(lit.Body.End(), nil)
}

// releaseIn discharges obligations satisfied by this call; reports
// whether the call was a release.
func (t *tracker) releaseIn(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if releaseNames[sel.Sel.Name] {
		switch x := sel.X.(type) {
		case *ast.Ident:
			if _, live := t.live[x.Name]; live {
				delete(t.live, x.Name)
				return true
			}
		case *ast.SelectorExpr: // resp.Body.Close()
			if id, ok := x.X.(*ast.Ident); ok && x.Sel.Name == "Body" {
				if o, live := t.live[id.Name]; live && o.kind == kindBody {
					delete(t.live, id.Name)
					return true
				}
			}
		}
		return false
	}
	if strings.HasPrefix(sel.Sel.Name, "Release") {
		for _, arg := range call.Args {
			if id, ok := stripParens(arg).(*ast.Ident); ok {
				if o, live := t.live[id.Name]; live && o.kind == kindScratch {
					delete(t.live, id.Name)
					return true
				}
			}
		}
	}
	return false
}

// escapeArgs discharges non-scratch tracked values passed as arguments:
// the callee took custody (a scratch passed down is use, not release).
func (t *tracker) escapeArgs(arg ast.Expr) {
	ast.Inspect(arg, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if o, live := t.live[id.Name]; live && o.kind != kindScratch {
				delete(t.live, id.Name)
			}
		}
		return true
	})
}

// escapeIdents discharges every tracked value referenced in e (stores,
// sends, goroutine captures — the value left this function's custody).
func (t *tracker) escapeIdents(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			delete(t.live, id.Name)
		}
		return true
	})
}

func cloneLive(m map[string]*obligation) map[string]*obligation {
	c := make(map[string]*obligation, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func caseArms(body *ast.BlockStmt) [][]ast.Stmt {
	var arms [][]ast.Stmt
	for _, c := range body.List {
		arms = append(arms, c.(*ast.CaseClause).Body)
	}
	return arms
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if c.(*ast.CaseClause).List == nil {
			return true
		}
	}
	return false
}

func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return terminatesStmt(list[len(list)-1])
}

func terminatesStmt(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return st.Tok == token.BREAK || st.Tok == token.CONTINUE || st.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(st.List)
	case *ast.LabeledStmt:
		return terminatesStmt(st.Stmt)
	}
	return false
}
