package reslifecycle_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/reslifecycle"
)

func TestAliasReleaseRepro(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

import "net/http"

func aliasClose() error {
	resp, err := http.Get("http://x")
	if err != nil {
		return err
	}
	r2 := resp
	r2.Body.Close()
	return nil
}
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadDir(dir, "fixture")
	if err != nil {
		t.Fatal(err)
	}
	diags := analysistest.Findings(t, pkg, reslifecycle.Analyzer, false)
	for _, d := range diags {
		t.Logf("diag: %s", d)
	}
	if len(diags) != 0 {
		t.Errorf("expected clean, got %d diagnostics", len(diags))
	}
}
