// Multi-package fixture, package a: the creator lives in package b; its
// declared result type — seen only through b's function index — is what
// puts the obligation on this caller.
package fixture

import (
	"context"

	fixb "fixture/b"
)

func leaks(ctx context.Context) error {
	s, err := fixb.Open(ctx) // want "not released on every path"
	if err != nil {
		return err
	}
	_ = s
	return nil
}

func clean(ctx context.Context) error {
	s, err := fixb.Open(ctx)
	if err != nil {
		return err
	}
	defer s.Close()
	return nil
}
