// Multi-package fixture, package b: a wrapper whose declared result is
// llm.Stream — package a's obligations come from this signature.
package fixture

import (
	"context"

	llm "repro/internal/llm"
)

func Open(ctx context.Context) (llm.Stream, error) { return nil, nil }
