// Fixture: every way an obligation legitimately dies — defer after the
// err guard, direct propagation, field stores, channel sends, bound
// release methods, scratch release, nil self-guards, and arg hand-off.
package fixture

import (
	"context"
	"net/http"

	llm "repro/internal/llm"
	sched "repro/internal/sched"
)

type vecPool struct{}

func (vecPool) TextScratch(text string) []float32  { return nil }
func (vecPool) ReleaseScratch(v []float32)         {}
func score(v []float32) float32                    { return 0 }
func open(ctx context.Context) (llm.Stream, error) { return nil, nil }
func newSched() (*sched.Scheduler, error)          { return nil, nil }
func register(s llm.Stream)                        {}

type holder struct {
	s   llm.Stream
	err error
}

// Canonical shape: guard the error, then defer the release.
func deferAfterGuard(ctx context.Context) error {
	s, err := open(ctx)
	if err != nil {
		return err
	}
	defer s.Close()
	return nil
}

// Creator call returned directly: propagation, the caller owns it now.
func propagate(ctx context.Context) (llm.Stream, error) {
	return open(ctx)
}

// Returning the named value also escapes it.
func namedReturn(ctx context.Context) (llm.Stream, error) {
	s, err := open(ctx)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Creation straight into struct fields: stored, not ours to track.
func (h *holder) init(ctx context.Context) {
	h.s, h.err = open(ctx)
}

// Store after creation transfers ownership to the holder.
func stash(ctx context.Context, h *holder) error {
	s, err := open(ctx)
	if err != nil {
		return err
	}
	h.s = s
	return nil
}

// Sending on a channel hands the value to the receiver.
func publish(ctx context.Context, ch chan llm.Stream) error {
	s, err := open(ctx)
	if err != nil {
		return err
	}
	ch <- s
	return nil
}

// Bound method value: f := s.Close discharges at the binding.
func boundRelease(ctx context.Context) error {
	s, err := open(ctx)
	if err != nil {
		return err
	}
	f := s.Close
	defer f()
	return nil
}

// Scratch vectors die only through a Release*-named call.
func scratchReleased(p *vecPool, text string) float32 {
	v := p.TextScratch(text)
	defer p.ReleaseScratch(v)
	return score(v)
}

// Non-deferred release works too.
func scratchInline(p *vecPool, text string) float32 {
	v := p.TextScratch(text)
	r := score(v)
	p.ReleaseScratch(v)
	return r
}

// Explicit nil self-guard: nothing to release on the nil path.
func maybeClose(ctx context.Context) {
	s, _ := open(ctx)
	if s != nil {
		s.Close()
	}
}

// Passing a stream to a consumer transfers custody (unlike scratch).
func handOff(ctx context.Context) error {
	s, err := open(ctx)
	if err != nil {
		return err
	}
	register(s)
	return nil
}

// Closer subsystems follow the same discipline.
func withScheduler(ctx context.Context) error {
	sc, err := newSched()
	if err != nil {
		return err
	}
	defer sc.Close()
	return nil
}

// Response bodies close through resp.Body.Close().
func fetchOK(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return nil
}
