// Fixture: obligations leaked on some path — early returns, discarded
// results, scratch vectors used but never released, unclosed response
// bodies, creations dropped on the floor, and leaks inside goroutine
// literals. All diagnostics anchor at the creation site.
package fixture

import (
	"context"
	"errors"
	"net/http"

	llm "repro/internal/llm"
)

var errBusy = errors.New("busy")

type vecPool struct{}

func (vecPool) TextScratch(text string) []float32 { return nil }

func open(ctx context.Context) (llm.Stream, error) { return nil, nil }

func tooBusy() bool { return false }

func consume(v []float32) {}

// The happy path closes, but the admission-control early return leaks.
func earlyReturn(ctx context.Context) error {
	s, err := open(ctx) // want "not released on every path"
	if err != nil {
		return err
	}
	if tooBusy() {
		return errBusy
	}
	s.Close()
	return nil
}

// Deliberately discarding a stream still leaks the connection.
func discard(ctx context.Context) error {
	_, err := open(ctx) // want "not released on every path"
	return err
}

// Passing a scratch vector to a consumer is use, not release.
func scratchLeak(p *vecPool, text string) {
	v := p.TextScratch(text) // want "not released on every path"
	consume(v)
}

// The body is read but never closed on either branch.
func fetchLeak(url string) error {
	resp, err := http.Get(url) // want "not released on every path"
	if err != nil {
		return err
	}
	if resp.StatusCode != 200 {
		return errBusy
	}
	return nil
}

// Creation dropped on the floor: nobody can ever close it.
func dropOnFloor(ctx context.Context) {
	open(ctx) // want "not released on every path"
}

// A goroutine literal is its own obligation scope: the stream opened
// inside must be closed inside.
func inGoroutine(ctx context.Context) {
	go func() {
		s, err := open(ctx) // want "not released on every path"
		if err != nil {
			return
		}
		_ = s
	}()
}
