// Fixture: //llmdm:allow reslifecycle at the creation waives a
// deliberate process-lifetime obligation. The load-bearing test reruns
// with IgnoreAnnotations and expects the finding back.
package fixture

import (
	"context"

	llm "repro/internal/llm"
)

func open(ctx context.Context) (llm.Stream, error) { return nil, nil }

func processLifetime(ctx context.Context) {
	//llmdm:allow reslifecycle fixture: stream lives until process exit
	s, _ := open(ctx)
	_ = s
}
