// Program: the interprocedural layer. A Program indexes a group of
// loaded packages — every function and method declaration, struct field
// types, package string constants, import graphs — and resolves call
// sites to their target FuncInfo so analyzers can reason across
// function and package boundaries.
//
// The framework is syntax-only (no go/types; see the package doc), so
// resolution is name- and shape-based:
//
//   - free functions resolve within their package by identifier, and
//     across packages through the file's imports (`pkg.Fn` → the import
//     path's Fn);
//   - methods resolve through a lightweight local type environment:
//     receiver and parameter declarations, `var x T`, `x := T{...}`,
//     `x := f(...)` (using f's declared result type), and field
//     selectors through the struct index;
//   - anything else is *unresolved* (Resolve returns nil). Analyzers
//     must treat unresolved calls conservatively in whatever direction
//     keeps them quiet: the engine's charter is high-confidence
//     interprocedural findings, not completeness.
//
// Types are canonicalized to "import/path.Name" strings (pointers and
// parens stripped), so a `*cascade.RunStream` result and a
// `RunStream` receiver in package cascade meet at the same key.
package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Program is an indexed group of packages analyzed together.
type Program struct {
	Pkgs []*Package

	// funcs: canonical key → declaration. Free functions key as
	// "pkgpath.Name", methods as "pkgpath.Recv.Name".
	funcs map[string]*FuncInfo
	// structs: "pkgpath.Type" → field name → canonical field type.
	structs map[string]map[string]string
	// consts: "pkgpath" → const name → string value (for metricname's
	// cross-package resolution).
	consts map[string]map[string]string
	// bufferedChans: "pkgpath" → names (vars or fields) observed being
	// assigned a buffered `make(chan ..., n>0)` anywhere in the package.
	bufferedChans map[string]map[string]bool

	summaries map[*FuncInfo]*Summary
	transAcq  map[*FuncInfo]map[string]bool
	annots    map[*ast.File]lineDirectives
	// Stash lets analyzers memoize program-wide computations (e.g.
	// reslifecycle's obligation-creator closure) across per-package
	// passes. Keys are namespaced by analyzer name.
	Stash map[string]interface{}
}

// FuncInfo is one function or method declaration in the program.
type FuncInfo struct {
	Pkg  *Package
	File *ast.File
	Decl *ast.FuncDecl
	// Name is the bare identifier; Recv the receiver's base type name
	// ("" for free functions).
	Name string
	Recv string
	// Key is the canonical identity: pkgpath.Name or pkgpath.Recv.Name.
	Key string
	// Results are the canonical types of the declared results ("" for
	// untracked shapes like funcs and maps).
	Results []string

	env map[string]string // lazily built local type environment
}

// String returns the human form used in diagnostics: Recv.Name or Name,
// qualified by the package path's last element.
func (f *FuncInfo) String() string {
	short := f.Pkg.Path
	if i := strings.LastIndex(short, "/"); i >= 0 {
		short = short[i+1:]
	}
	if f.Recv != "" {
		return short + "." + f.Recv + "." + f.Name
	}
	return short + "." + f.Name
}

// BuildProgram indexes the packages as one analysis unit.
func BuildProgram(pkgs []*Package) *Program {
	pr := &Program{
		Pkgs:          pkgs,
		funcs:         map[string]*FuncInfo{},
		structs:       map[string]map[string]string{},
		consts:        map[string]map[string]string{},
		bufferedChans: map[string]map[string]bool{},
		summaries:     map[*FuncInfo]*Summary{},
		transAcq:      map[*FuncInfo]map[string]bool{},
		annots:        map[*ast.File]lineDirectives{},
		Stash:         map[string]interface{}{},
	}
	for _, pkg := range pkgs {
		pr.indexPackage(pkg)
	}
	return pr
}

func (pr *Program) indexPackage(pkg *Package) {
	consts := map[string]string{}
	buffered := map[string]bool{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				fi := &FuncInfo{Pkg: pkg, File: f, Decl: d, Name: d.Name.Name}
				if d.Recv != nil && len(d.Recv.List) == 1 {
					fi.Recv = baseTypeName(d.Recv.List[0].Type)
				}
				fi.Key = funcKey(pkg.Path, fi.Recv, fi.Name)
				if d.Type.Results != nil {
					for _, r := range d.Type.Results.List {
						ct := pr.canonicalType(pkg, f, r.Type)
						n := len(r.Names)
						if n == 0 {
							n = 1
						}
						for i := 0; i < n; i++ {
							fi.Results = append(fi.Results, ct)
						}
					}
				}
				pr.funcs[fi.Key] = fi
			case *ast.GenDecl:
				pr.indexGenDecl(pkg, f, d, consts)
			}
		}
		// Buffered-channel names: any assignment or composite field of a
		// buffered make(chan ..., n) marks that name as a safe-send slot
		// package-wide (goleak's "guaranteed counterpart" heuristic).
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i < len(n.Lhs) && isBufferedMake(rhs) {
						buffered[lastName(n.Lhs[i])] = true
					}
				}
			case *ast.KeyValueExpr:
				if k, ok := n.Key.(*ast.Ident); ok && isBufferedMake(n.Value) {
					buffered[k.Name] = true
				}
			}
			return true
		})
	}
	pr.consts[pkg.Path] = consts
	pr.bufferedChans[pkg.Path] = buffered
}

func (pr *Program) indexGenDecl(pkg *Package, f *ast.File, d *ast.GenDecl, consts map[string]string) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			st, ok := s.Type.(*ast.StructType)
			if !ok {
				continue
			}
			fields := map[string]string{}
			for _, fl := range st.Fields.List {
				ct := pr.canonicalType(pkg, f, fl.Type)
				for _, name := range fl.Names {
					fields[name.Name] = ct
				}
			}
			pr.structs[pkg.Path+"."+s.Name.Name] = fields
		case *ast.ValueSpec:
			if d.Tok.String() != "const" {
				continue
			}
			for i, name := range s.Names {
				if i >= len(s.Values) {
					break
				}
				if lit, ok := s.Values[i].(*ast.BasicLit); ok && lit.Kind.String() == "STRING" {
					if v, err := strconv.Unquote(lit.Value); err == nil {
						consts[name.Name] = v
					}
				}
			}
		}
	}
}

func funcKey(pkgPath, recv, name string) string {
	if recv != "" {
		return pkgPath + "." + recv + "." + name
	}
	return pkgPath + "." + name
}

// baseTypeName strips pointers/parens off a receiver or value type and
// returns the bare identifier ("" for untracked shapes).
func baseTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return baseTypeName(e.X)
	case *ast.ParenExpr:
		return baseTypeName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr: // generic instantiation
		return baseTypeName(e.X)
	}
	return ""
}

// canonicalType renders a type expression as "import/path.Name".
// Builtins and untracked shapes (maps, funcs, channels) return "".
func (pr *Program) canonicalType(pkg *Package, f *ast.File, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return pr.canonicalType(pkg, f, e.X)
	case *ast.ParenExpr:
		return pr.canonicalType(pkg, f, e.X)
	case *ast.Ident:
		if isBuiltinType(e.Name) {
			return ""
		}
		return pkg.Path + "." + e.Name
	case *ast.SelectorExpr:
		id, ok := e.X.(*ast.Ident)
		if !ok {
			return ""
		}
		if path, ok := importPath(f, id.Name); ok {
			return path + "." + e.Sel.Name
		}
		return ""
	}
	return ""
}

func isBuiltinType(name string) bool {
	switch name {
	case "bool", "string", "error", "byte", "rune", "any",
		"int", "int8", "int16", "int32", "int64",
		"uint", "uint8", "uint16", "uint32", "uint64", "uintptr",
		"float32", "float64", "complex64", "complex128":
		return true
	}
	return false
}

// importPath resolves a file-local package identifier to its import
// path ("llm" → "repro/internal/llm").
func importPath(f *ast.File, name string) (string, bool) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		local := path
		if i := strings.LastIndex(local, "/"); i >= 0 {
			local = local[i+1:]
		}
		if imp.Name != nil {
			local = imp.Name.Name
		}
		if local == name {
			return path, true
		}
	}
	return "", false
}

// directivesFor parses (and caches) a file's //llmdm: directives.
func (pr *Program) directivesFor(pkg *Package, f *ast.File) lineDirectives {
	if ld, ok := pr.annots[f]; ok {
		return ld
	}
	ld := parseDirectives(pkg.Fset, f)
	pr.annots[f] = ld
	return ld
}

// Waived reports whether pos (in one of pkg's files) carries an
// //llmdm:allow <analyzer> directive on its line or the line above.
// Summaries use this so a waiver's justification covers interprocedural
// consumers of the summarized fact, not just the local analyzer.
func (pr *Program) Waived(pkg *Package, pos token.Pos, analyzer string) bool {
	var file *ast.File
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			file = f
			break
		}
	}
	if file == nil {
		return false
	}
	ld := pr.directivesFor(pkg, file)
	line := pkg.Fset.Position(pos).Line
	for _, ds := range [][]directive{ld[line], ld[line-1]} {
		for _, d := range ds {
			if d.verb == "allow" && d.arg == analyzer {
				return true
			}
		}
	}
	return false
}

// FuncOf returns the FuncInfo for a declaration in pkg, or nil.
func (pr *Program) FuncOf(pkg *Package, decl *ast.FuncDecl) *FuncInfo {
	recv := ""
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		recv = baseTypeName(decv(decl))
	}
	return pr.funcs[funcKey(pkg.Path, recv, decl.Name.Name)]
}

func decv(decl *ast.FuncDecl) ast.Expr { return decl.Recv.List[0].Type }

// Lookup finds a function by canonical key parts.
func (pr *Program) Lookup(pkgPath, recv, name string) *FuncInfo {
	return pr.funcs[funcKey(pkgPath, recv, name)]
}

// ConstString resolves pkg.Name or a bare Name to a string constant
// declared anywhere in the program.
func (pr *Program) ConstString(f *FuncInfo, e ast.Expr) (string, bool) {
	return pr.ConstStringIn(f.Pkg.Path, f.File, e)
}

// ConstStringIn is ConstString for sites outside any indexed function:
// it resolves a bare Name against pkgPath's constants and pkg.Name
// through file's imports into the program-wide constant index.
func (pr *Program) ConstStringIn(pkgPath string, file *ast.File, e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		v, ok := pr.consts[pkgPath][e.Name]
		return v, ok
	case *ast.SelectorExpr:
		id, ok := e.X.(*ast.Ident)
		if !ok {
			return "", false
		}
		path, ok := importPath(file, id.Name)
		if !ok {
			return "", false
		}
		v, ok := pr.consts[path][e.Sel.Name]
		return v, ok
	}
	return "", false
}

// BufferedChanName reports whether name was observed being assigned a
// buffered channel anywhere in the package.
func (pr *Program) BufferedChanName(pkgPath, name string) bool {
	return pr.bufferedChans[pkgPath][name]
}

func isBufferedMake(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" {
		return false
	}
	if _, ok := call.Args[0].(*ast.ChanType); !ok {
		return false
	}
	if lit, ok := call.Args[1].(*ast.BasicLit); ok && lit.Value == "0" {
		return false
	}
	return true // non-literal sizes presumed intentional buffering
}

func lastName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return lastName(e.X)
	case *ast.CallExpr: // <-ctx.Done() names the method
		return lastName(e.Fun)
	case *ast.ParenExpr:
		return lastName(e.X)
	}
	return ""
}

// typeEnv builds (and caches) the function's flow-insensitive local
// type environment: variable name → canonical type.
func (pr *Program) typeEnv(f *FuncInfo) map[string]string {
	if f.env != nil {
		return f.env
	}
	env := map[string]string{}
	d := f.Decl
	if d.Recv != nil && len(d.Recv.List) == 1 && len(d.Recv.List[0].Names) == 1 {
		env[d.Recv.List[0].Names[0].Name] = f.Pkg.Path + "." + f.Recv
	}
	for _, p := range d.Type.Params.List {
		ct := pr.canonicalType(f.Pkg, f.File, p.Type)
		for _, name := range p.Names {
			env[name.Name] = ct
		}
	}
	if d.Type.Results != nil {
		for _, r := range d.Type.Results.List {
			ct := pr.canonicalType(f.Pkg, f.File, r.Type)
			for _, name := range r.Names {
				env[name.Name] = ct
			}
		}
	}
	if d.Body != nil {
		// Two passes so `x := f(...)` can see types established after it
		// in source order (rare, but cheap to cover).
		for i := 0; i < 2; i++ {
			ast.Inspect(d.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.DeclStmt:
					gd, ok := n.Decl.(*ast.GenDecl)
					if !ok {
						return true
					}
					for _, spec := range gd.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok || vs.Type == nil {
							continue
						}
						ct := pr.canonicalType(f.Pkg, f.File, vs.Type)
						for _, name := range vs.Names {
							env[name.Name] = ct
						}
					}
				case *ast.AssignStmt:
					pr.inferAssign(f, env, n)
				case *ast.RangeStmt:
					// Untyped; skip.
				case *ast.TypeSwitchStmt:
					return false // per-arm types are beyond this env
				}
				return true
			})
		}
	}
	f.env = env
	return env
}

func (pr *Program) inferAssign(f *FuncInfo, env map[string]string, a *ast.AssignStmt) {
	// x, err := call() — single multi-result RHS.
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		if results := pr.callResults(f, env, a.Rhs[0]); results != nil {
			for i, lhs := range a.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if i < len(results) && results[i] != "" {
					if _, exists := env[id.Name]; !exists {
						env[id.Name] = results[i]
					}
				}
			}
		}
		return
	}
	for i, lhs := range a.Lhs {
		if i >= len(a.Rhs) {
			break
		}
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if _, exists := env[id.Name]; exists {
			continue
		}
		if t := pr.exprType(f, env, a.Rhs[i]); t != "" {
			env[id.Name] = t
		}
	}
}

// callResults returns the canonical result types of a resolvable call.
func (pr *Program) callResults(f *FuncInfo, env map[string]string, e ast.Expr) []string {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	if callee := pr.resolveWithEnv(f, env, call); callee != nil {
		return callee.Results
	}
	return nil
}

// exprType infers the canonical type of an expression from the local
// environment ("" when unknown).
func (pr *Program) exprType(f *FuncInfo, env map[string]string, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return env[e.Name]
	case *ast.UnaryExpr:
		return pr.exprType(f, env, e.X) // &T{...}
	case *ast.StarExpr:
		return pr.exprType(f, env, e.X)
	case *ast.ParenExpr:
		return pr.exprType(f, env, e.X)
	case *ast.CompositeLit:
		if e.Type != nil {
			return pr.canonicalType(f.Pkg, f.File, e.Type)
		}
	case *ast.TypeAssertExpr:
		if e.Type != nil {
			return pr.canonicalType(f.Pkg, f.File, e.Type)
		}
	case *ast.SelectorExpr:
		// x.field through the struct index; or pkg.Var (untracked).
		base := pr.exprType(f, env, e.X)
		if base == "" {
			return ""
		}
		return pr.structs[base][e.Sel.Name]
	case *ast.CallExpr:
		if results := pr.callResults(f, env, e); len(results) > 0 {
			return results[0]
		}
	case *ast.IndexExpr:
		return "" // element types untracked
	}
	return ""
}

// Resolve maps a call expression inside f to its target declaration, or
// nil when the target cannot be confidently identified.
func (pr *Program) Resolve(f *FuncInfo, call *ast.CallExpr) *FuncInfo {
	return pr.resolveWithEnv(f, pr.typeEnv(f), call)
}

func (pr *Program) resolveWithEnv(f *FuncInfo, env map[string]string, call *ast.CallExpr) *FuncInfo {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		// Same-package free function — unless shadowed by a local.
		if _, shadowed := env[fun.Name]; shadowed {
			return nil
		}
		return pr.funcs[funcKey(f.Pkg.Path, "", fun.Name)]
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if _, local := env[id.Name]; !local {
				if path, ok := importPath(f.File, id.Name); ok {
					return pr.funcs[funcKey(path, "", fun.Sel.Name)]
				}
			}
		}
		recvType := pr.exprType(f, env, fun.X)
		if recvType == "" {
			return nil
		}
		dot := strings.LastIndex(recvType, ".")
		if dot < 0 {
			return nil
		}
		return pr.funcs[funcKey(recvType[:dot], recvType[dot+1:], fun.Sel.Name)]
	}
	return nil
}

// TypeOf exposes expression typing to analyzers.
func (pr *Program) TypeOf(f *FuncInfo, e ast.Expr) string {
	return pr.exprType(f, pr.typeEnv(f), e)
}

// EachFunc invokes fn for every function declaration in the program, in
// package and then source order.
func (pr *Program) EachFunc(fn func(*FuncInfo)) {
	for _, pkg := range pr.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					if fi := pr.FuncOf(pkg, fd); fi != nil {
						fn(fi)
					}
				}
			}
		}
	}
}

// TransitiveAcquires returns every canonical lock key f may acquire,
// directly or through resolvable callees. Memoized and cycle-safe.
func (pr *Program) TransitiveAcquires(f *FuncInfo) map[string]bool {
	if got, ok := pr.transAcq[f]; ok {
		if got == nil {
			return map[string]bool{} // cycle in progress: fixed point below
		}
		return got
	}
	pr.transAcq[f] = nil // in-progress marker
	out := map[string]bool{}
	sum := pr.Summary(f)
	for _, a := range sum.Acquires {
		if a.Key != "" {
			out[a.Key] = true
		}
	}
	for _, c := range sum.Calls {
		if c.Callee == nil || c.Callee == f {
			continue
		}
		for k := range pr.TransitiveAcquires(c.Callee) {
			out[k] = true
		}
	}
	pr.transAcq[f] = out
	return out
}
