package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/suite"
)

// TestTreeHoldsItsInvariants is the in-tree enforcement test: the full
// analyzer suite over the whole module must be clean. It is the same
// check `make lint` and CI run via cmd/llmdm-lint, wired into `go test`
// so a violation fails the ordinary test run too.
func TestTreeHoldsItsInvariants(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, a := range suite.All() {
			for _, d := range analysistest.Findings(t, pkg, a, false) {
				t.Errorf("%s", d.String())
			}
		}
	}
}

// TestSchedAnnotationsAreLoadBearing re-runs the suite over internal/sched
// with annotations ignored and asserts the deliberate sites resurface:
// the detached batch-flush root (ctxflow) and the gated enqueue's comm
// ops (lockscope). If someone deletes the annotations, the clean-tree
// test above fails; if someone weakens the analyzers until the sites no
// longer trigger, this test fails.
func TestSchedAnnotationsAreLoadBearing(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, []string{"./internal/sched"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]

	ctxflowDiags := analysistest.Findings(t, pkg, suite.ByName("ctxflow"), true)
	found := false
	for _, d := range ctxflowDiags {
		if filepath.Base(d.Pos.Filename) == "sched.go" && strings.Contains(d.Message, "context.Background()") {
			found = true
		}
	}
	if !found {
		t.Errorf("ctxflow with annotations ignored did not flag sched.go's detached batch-flush root; got %v", ctxflowDiags)
	}

	lockDiags := analysistest.Findings(t, pkg, suite.ByName("lockscope"), true)
	if len(lockDiags) < 2 {
		t.Errorf("lockscope with annotations ignored found %d diagnostics in internal/sched, want >= 2 (the gated enqueue's send and cancel arms)", len(lockDiags))
	}

	// And with annotations honored, both analyzers accept the package.
	for _, name := range []string{"ctxflow", "lockscope"} {
		if diags := analysistest.Findings(t, pkg, suite.ByName(name), false); len(diags) != 0 {
			t.Errorf("%s over internal/sched with annotations honored: %v, want clean", name, diags)
		}
	}
}

// TestObsSpawnHelperAnnotationIsLoadBearing: the managed spawn helper's
// own `go` statement is the one waived gospawn site in internal/obs.
func TestObsSpawnHelperAnnotationIsLoadBearing(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, []string{"./internal/obs"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	diags := analysistest.Findings(t, pkgs[0], suite.ByName("gospawn"), true)
	found := false
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) == "spawn.go" {
			found = true
		}
	}
	if !found {
		t.Errorf("gospawn with annotations ignored did not flag obs.Go's internal spawn; got %v", diags)
	}
	if diags := analysistest.Findings(t, pkgs[0], suite.ByName("gospawn"), false); len(diags) != 0 {
		t.Errorf("gospawn over internal/obs with annotations honored: %v, want clean", diags)
	}
}

// TestSuiteIsComplete pins the analyzer roster: a new analyzer must join
// the suite (and so `make lint` and this enforcement test) to exist.
func TestSuiteIsComplete(t *testing.T) {
	want := []string{"ctxflow", "lockscope", "billmeter", "gospawn", "metricname"}
	all := suite.All()
	if len(all) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("suite[%d] = %s, want %s", i, all[i].Name, name)
		}
		if suite.ByName(name) != all[i] {
			t.Errorf("ByName(%q) does not resolve to the suite entry", name)
		}
	}
	if suite.ByName("nosuch") != nil {
		t.Error("ByName of an unknown analyzer should be nil")
	}
}
