package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/suite"
)

// loadTree loads every package in the module and builds the shared
// interprocedural program over them — the same shape cmd/llmdm-lint
// runs, so cross-package summaries (lockorder edges, goleak witnesses,
// reslifecycle creators) are in scope.
func loadTree(t *testing.T) ([]*analysis.Package, *analysis.Program) {
	t.Helper()
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	return pkgs, analysis.BuildProgram(pkgs)
}

// TestTreeHoldsItsInvariants is the in-tree enforcement test: the full
// eight-analyzer suite over the whole module must be clean. It is the
// same check `make lint` and CI run via cmd/llmdm-lint, wired into
// `go test` so a violation fails the ordinary test run too.
func TestTreeHoldsItsInvariants(t *testing.T) {
	pkgs, prog := loadTree(t)
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzersProg(prog, pkg, suite.All(), false)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d.String())
		}
	}
}

// TestEveryWaiverIsLoadBearing audits the tree's //llmdm: annotations:
// each must carry a reason, and each must resurface as a finding when
// the suite runs with IgnoreAnnotations — a waiver that waives nothing
// is stale and has to go.
func TestEveryWaiverIsLoadBearing(t *testing.T) {
	pkgs, prog := loadTree(t)
	waivers := prog.Waivers()
	if len(waivers) == 0 {
		t.Fatal("no //llmdm: annotations in the tree; expected at least the sched and obs sites")
	}

	type key struct {
		file     string
		line     int
		analyzer string
	}
	hits := map[key]bool{}
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzersProg(prog, pkg, suite.All(), true)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			hits[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] = true
		}
	}

	// A directive covers its own line and the line below it.
	resurfaces := func(w analysis.Waiver, analyzer string) bool {
		return hits[key{w.Pos.Filename, w.Pos.Line, analyzer}] ||
			hits[key{w.Pos.Filename, w.Pos.Line + 1, analyzer}]
	}
	for _, w := range waivers {
		if w.Reason == "" {
			t.Errorf("reasonless annotation at %s: every waiver must say why", w.Pos)
		}
		analyzer := w.Analyzer
		if w.Verb == "detached" {
			analyzer = "ctxflow" // detached roots are ctxflow's charter
		}
		if !resurfaces(w, analyzer) {
			t.Errorf("annotation at %s [%s %s] waives nothing: no %s finding resurfaces under IgnoreAnnotations — stale or mis-targeted",
				w.Pos, w.Verb, w.Analyzer, analyzer)
		}
	}
}

// TestSchedAnnotationsAreLoadBearing re-runs the suite over internal/sched
// with annotations ignored and asserts the deliberate sites resurface:
// the detached batch-flush root (ctxflow) and the gated enqueue's comm
// ops (lockscope). If someone deletes the annotations, the clean-tree
// test above fails; if someone weakens the analyzers until the sites no
// longer trigger, this test fails.
func TestSchedAnnotationsAreLoadBearing(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, []string{"./internal/sched"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]

	ctxflowDiags := analysistest.Findings(t, pkg, suite.ByName("ctxflow"), true)
	found := false
	for _, d := range ctxflowDiags {
		if filepath.Base(d.Pos.Filename) == "sched.go" && strings.Contains(d.Message, "context.Background()") {
			found = true
		}
	}
	if !found {
		t.Errorf("ctxflow with annotations ignored did not flag sched.go's detached batch-flush root; got %v", ctxflowDiags)
	}

	lockDiags := analysistest.Findings(t, pkg, suite.ByName("lockscope"), true)
	if len(lockDiags) < 2 {
		t.Errorf("lockscope with annotations ignored found %d diagnostics in internal/sched, want >= 2 (the gated enqueue's send and cancel arms)", len(lockDiags))
	}

	// And with annotations honored, both analyzers accept the package.
	for _, name := range []string{"ctxflow", "lockscope"} {
		if diags := analysistest.Findings(t, pkg, suite.ByName(name), false); len(diags) != 0 {
			t.Errorf("%s over internal/sched with annotations honored: %v, want clean", name, diags)
		}
	}
}

// TestObsSpawnHelperAnnotationIsLoadBearing: the managed spawn helper's
// own `go` statement is the one waived gospawn site in internal/obs.
func TestObsSpawnHelperAnnotationIsLoadBearing(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, []string{"./internal/obs"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	diags := analysistest.Findings(t, pkgs[0], suite.ByName("gospawn"), true)
	found := false
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) == "spawn.go" {
			found = true
		}
	}
	if !found {
		t.Errorf("gospawn with annotations ignored did not flag obs.Go's internal spawn; got %v", diags)
	}
	if diags := analysistest.Findings(t, pkgs[0], suite.ByName("gospawn"), false); len(diags) != 0 {
		t.Errorf("gospawn over internal/obs with annotations honored: %v, want clean", diags)
	}
}

// injectPackage writes src into a temp dir and loads it as a package
// under the given import path — defect-injection scaffolding for the
// analyzers the (genuinely clean) tree gives no live findings for.
func injectPackage(t *testing.T, importPath, src string) *analysis.Package {
	t.Helper()
	path := filepath.Join(t.TempDir(), "injected.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadFiles([]string{path}, importPath)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestLockOrderDetectsInjectedInversion: the tree holds no lock-order
// cycles, so prove the detection machinery end to end by injecting an
// AB/BA inversion and asserting lockorder reports the cycle.
func TestLockOrderDetectsInjectedInversion(t *testing.T) {
	pkg := injectPackage(t, "repro/internal/injected", `package injected

import "sync"

type a struct{ mu sync.Mutex }
type b struct{ mu sync.Mutex }

func lockB(y *b) {
	y.mu.Lock()
	y.mu.Unlock()
}

func lockA(x *a) {
	x.mu.Lock()
	x.mu.Unlock()
}

func aThenB(x *a, y *b) {
	x.mu.Lock()
	defer x.mu.Unlock()
	lockB(y)
}

func bThenA(x *a, y *b) {
	y.mu.Lock()
	defer y.mu.Unlock()
	lockA(x)
}
`)
	diags := analysistest.Findings(t, pkg, suite.ByName("lockorder"), false)
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "lock-order cycle") {
			found = true
		}
	}
	if !found {
		t.Errorf("lockorder did not detect the injected AB/BA inversion; got %v", diags)
	}
}

// TestGoleakDetectsInjectedPark: the serving path has no parked-forever
// goroutines, so inject one (an unguarded send in a proxy-path spawn)
// and assert goleak reports it.
func TestGoleakDetectsInjectedPark(t *testing.T) {
	pkg := injectPackage(t, "repro/internal/proxy", `package proxy

func leak(ch chan int) {
	go func() {
		ch <- 1
	}()
}
`)
	diags := analysistest.Findings(t, pkg, suite.ByName("goleak"), false)
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "park forever") {
			found = true
		}
	}
	if !found {
		t.Errorf("goleak did not detect the injected unguarded send; got %v", diags)
	}
}

// TestReslifecycleDetectsInjectedLeak pins the shape of the true
// finding this suite caught in internal/proxy (a tier stream opened in
// a goroutine and abandoned on the panic path): reinjecting the
// pre-fix shape must still trip the analyzer.
func TestReslifecycleDetectsInjectedLeak(t *testing.T) {
	pkg := injectPackage(t, "repro/internal/injected", `package injected

import (
	"context"

	"repro/internal/llm"
)

func open(ctx context.Context) (llm.Stream, error) { return nil, nil }

func abandons(ctx context.Context) error {
	s, err := open(ctx)
	if err != nil {
		return err
	}
	_ = s
	return nil
}
`)
	diags := analysistest.Findings(t, pkg, suite.ByName("reslifecycle"), false)
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "not released on every path") {
			found = true
		}
	}
	if !found {
		t.Errorf("reslifecycle did not detect the injected abandoned stream; got %v", diags)
	}
}

// TestSuiteIsComplete pins the analyzer roster: a new analyzer must join
// the suite (and so `make lint` and this enforcement test) to exist.
func TestSuiteIsComplete(t *testing.T) {
	want := []string{
		"ctxflow", "lockscope", "billmeter", "gospawn", "metricname",
		"lockorder", "reslifecycle", "goleak",
	}
	all := suite.All()
	if len(all) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("suite[%d] = %s, want %s", i, all[i].Name, name)
		}
		if suite.ByName(name) != all[i] {
			t.Errorf("ByName(%q) does not resolve to the suite entry", name)
		}
	}
	if suite.ByName("nosuch") != nil {
		t.Error("ByName of an unknown analyzer should be nil")
	}
}
