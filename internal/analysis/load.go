package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ModuleRoot walks up from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		abs = parent
	}
}

// modulePath reads the module path from root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
}

// skipDir names directories the loader never descends into: the go tool
// ignores testdata and _-/.-prefixed dirs, and the rest are not Go
// source trees.
func skipDir(name string) bool {
	return name == "testdata" || name == "bin" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// Load parses the packages under root selected by patterns. Patterns
// follow the go tool's shape: "./..." (everything under root), "./dir"
// or "./dir/..." (one subtree), "dir/file.go" is not supported. Test
// files (_test.go) are excluded: the analyzers govern production code.
func Load(root string, patterns []string) ([]*Package, error) {
	mod, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	type sel struct {
		dir       string // relative, cleaned ("." for root)
		recursive bool
	}
	var sels []sel
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		pat = filepath.Clean(strings.TrimPrefix(pat, "./"))
		if pat == "..." {
			pat, recursive = ".", true
		}
		sels = append(sels, sel{dir: pat, recursive: recursive})
	}

	dirs := map[string]bool{}
	for _, s := range sels {
		base := filepath.Join(root, s.dir)
		if !s.recursive {
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != base && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		pkg, err := LoadDir(dir, importPathFor(mod, root, dir))
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

func importPathFor(mod, root, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return mod
	}
	return mod + "/" + filepath.ToSlash(rel)
}

// LoadDir parses one directory's non-test Go files as a Package with the
// given import path. It returns (nil, nil) when the directory holds no
// non-test Go files.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, nil
	}
	return LoadFiles(files, importPath)
}

// LoadFiles parses the given files as one Package. The package name is
// taken from the first file; files from a different package (e.g. an
// external test package) are rejected.
func LoadFiles(filenames []string, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	pkg := &Package{Path: importPath, Fset: fset}
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		} else if f.Name.Name != pkg.Name {
			return nil, fmt.Errorf("analysis: %s: package %s, want %s", fn, f.Name.Name, pkg.Name)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, fn)
	}
	// A fixture can pin the import path the analyzers should see (the
	// package-path-dependent rules key off it): //llmdm:pkgpath <path>.
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(c.Text, "//llmdm:pkgpath "); ok {
					pkg.Path = strings.TrimSpace(rest)
				}
			}
		}
	}
	return pkg, nil
}

// Inspect is ast.Inspect re-exported for analyzer brevity.
func Inspect(node ast.Node, fn func(ast.Node) bool) { ast.Inspect(node, fn) }
