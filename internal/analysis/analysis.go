// Package analysis is the project's static-analysis framework: a small,
// stdlib-only reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus the repo-specific
// annotation escape hatches the analyzers honor.
//
// The five analyzers built on it (ctxflow, lockscope, billmeter, gospawn,
// metricname) enforce the serving-path invariants that PRs 1-3 only
// documented: contexts thread from the caller, no blocking call runs
// under a lock, every model call's spend is accounted, detached
// goroutines are managed, and metric names are static lowercase_snake
// constants. cmd/llmdm-lint runs them over the module (`make lint`), and
// internal/analysis's own tests run them over the serving-path packages
// so `go test ./...` fails on a regression too.
//
// # Annotations
//
// Two comment directives suppress diagnostics at a specific site, on the
// same line as the flagged expression or on the line directly above it:
//
//	//llmdm:detached [reason]         ctxflow: this context.Background()
//	                                  is a deliberate detached root (e.g.
//	                                  the scheduler's batch-flush timeout).
//	//llmdm:allow <analyzer> [reason] any analyzer: accept this site.
//
// Both should carry a reason; they are grep-able audit points, not
// blanket waivers.
//
// The framework is analysis over syntax only (go/ast, no go/types): the
// container pins no golang.org/x/tools, so the analyzers are written
// against names and shapes that are project conventions — which is
// exactly what they are meant to enforce.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one static check, mirroring x/tools' go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //llmdm:allow annotations.
	Name string
	// Doc is the one-paragraph rule statement printed by llmdm-lint -list.
	Doc string
	// Run reports diagnostics for one package via pass.Reportf.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one loaded (parsed, not type-checked) Go package.
type Package struct {
	// Path is the import path ("repro/internal/sched").
	Path string
	// Name is the package name ("sched", "main").
	Name string
	Fset *token.FileSet
	// Files are the parsed non-test sources, parallel to Filenames.
	Files     []*ast.File
	Filenames []string
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Prog is the interprocedural view of the package group the pass's
	// package was loaded with. Always non-nil: single-package runs get a
	// one-package program.
	Prog *Program
	// IgnoreAnnotations makes Reportf ignore //llmdm: escape hatches —
	// used by tests to prove an annotation is what accepts a site.
	IgnoreAnnotations bool

	diags  *[]Diagnostic
	annots map[*ast.File]lineDirectives
	cur    *ast.File
}

// lineDirectives maps a source line to the llmdm directives on it.
type lineDirectives map[int][]directive

type directive struct {
	verb   string // "detached" | "allow"
	arg    string // analyzer name for "allow"
	reason string // free-text justification after the verb/analyzer
}

// parseDirectives extracts //llmdm: comments from a file.
func parseDirectives(fset *token.FileSet, f *ast.File) lineDirectives {
	ld := lineDirectives{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, "llmdm:") {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, "llmdm:"))
			if len(fields) == 0 {
				continue
			}
			d := directive{verb: fields[0]}
			rest := fields[1:]
			if d.verb == "allow" && len(rest) > 0 {
				d.arg = rest[0]
				rest = rest[1:]
			}
			d.reason = directiveReason(rest)
			line := fset.Position(c.Pos()).Line
			ld[line] = append(ld[line], d)
		}
	}
	return ld
}

// directiveReason joins the free-text tail of a directive, tolerating a
// leading separator ("—", "--", "-", ":").
func directiveReason(fields []string) string {
	for len(fields) > 0 {
		switch fields[0] {
		case "—", "--", "-", ":":
			fields = fields[1:]
			continue
		}
		break
	}
	return strings.Join(fields, " ")
}

// Witness pairs a token.Pos with its resolved Position. Program-wide
// analyses need it because each Package carries its own FileSet, so raw
// Pos values from different packages cannot be compared or sorted.
type Witness struct {
	Pos      token.Pos
	Position token.Position
}

// Waiver is one //llmdm: annotation site, for the -waivers audit.
type Waiver struct {
	Pos token.Position
	// Verb is "allow" or "detached"; Analyzer the waived analyzer for
	// "allow" ("" for detached).
	Verb     string
	Analyzer string
	Reason   string
}

// String renders the waiver in the canonical audit-line form.
func (w Waiver) String() string {
	name := w.Verb
	if w.Analyzer != "" {
		name += " " + w.Analyzer
	}
	reason := w.Reason
	if reason == "" {
		reason = "(no reason)"
	}
	return fmt.Sprintf("%s: [%s] %s", w.Pos, name, reason)
}

// Waivers lists every annotation site in the program, position-sorted.
func (pr *Program) Waivers() []Waiver {
	var out []Waiver
	for _, pkg := range pr.Pkgs {
		for _, f := range pkg.Files {
			for line, ds := range pr.directivesFor(pkg, f) {
				for _, d := range ds {
					pos := pkg.Fset.Position(f.Pos())
					pos.Line = line
					pos.Column = 0
					out = append(out, Waiver{
						Pos: pos, Verb: d.verb, Analyzer: d.arg, Reason: d.reason,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// RunAnalyzers applies each analyzer to pkg and returns the combined,
// position-sorted diagnostics. The package is analyzed as a
// single-package program; use RunAnalyzersProg to share a multi-package
// program across passes.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, ignoreAnnotations bool) ([]Diagnostic, error) {
	return RunAnalyzersProg(BuildProgram([]*Package{pkg}), pkg, analyzers, ignoreAnnotations)
}

// RunAnalyzersProg applies each analyzer to pkg with prog as the
// interprocedural context.
func RunAnalyzersProg(prog *Program, pkg *Package, analyzers []*Analyzer, ignoreAnnotations bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	annots := make(map[*ast.File]lineDirectives, len(pkg.Files))
	for _, f := range pkg.Files {
		annots[f] = prog.directivesFor(pkg, f)
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:          a,
			Pkg:               pkg,
			Prog:              prog,
			IgnoreAnnotations: ignoreAnnotations,
			diags:             &diags,
			annots:            annots,
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// EachFile invokes fn for every file in the pass's package, tracking the
// current file so Reportf and the annotation helpers resolve against it.
func (p *Pass) EachFile(fn func(name string, f *ast.File)) {
	for i, f := range p.Pkg.Files {
		p.cur = f
		fn(p.Pkg.Filenames[i], f)
	}
	p.cur = nil
}

// Reportf records a diagnostic at pos unless an annotation allows the
// site (//llmdm:allow <analyzer> on the same line or the line above).
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	if !p.IgnoreAnnotations && p.allowed(pos, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Detached reports whether pos carries a //llmdm:detached annotation
// (same line or the line above) — ctxflow's escape hatch for deliberate
// detached context roots.
func (p *Pass) Detached(pos token.Pos) bool {
	if p.IgnoreAnnotations {
		return false
	}
	return p.hasDirective(pos, func(d directive) bool { return d.verb == "detached" })
}

func (p *Pass) allowed(pos token.Pos, analyzer string) bool {
	return p.hasDirective(pos, func(d directive) bool {
		return d.verb == "allow" && d.arg == analyzer
	})
}

func (p *Pass) hasDirective(pos token.Pos, match func(directive) bool) bool {
	f := p.fileFor(pos)
	if f == nil {
		return false
	}
	line := p.Pkg.Fset.Position(pos).Line
	for _, d := range p.annots[f][line] {
		if match(d) {
			return true
		}
	}
	for _, d := range p.annots[f][line-1] {
		if match(d) {
			return true
		}
	}
	return false
}

func (p *Pass) fileFor(pos token.Pos) *ast.File {
	if p.cur != nil && p.cur.FileStart <= pos && pos <= p.cur.FileEnd {
		return p.cur
	}
	for _, f := range p.Pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// IsMain reports whether the package is a command (package main) —
// exempt from ctxflow and billmeter, which govern library code.
func (p *Pass) IsMain() bool { return p.Pkg.Name == "main" }

// PathHasPrefix reports whether the package's import path equals prefix
// or sits beneath it.
func (p *Pass) PathHasPrefix(prefix string) bool {
	return p.Pkg.Path == prefix || strings.HasPrefix(p.Pkg.Path, prefix+"/")
}

// ExprString renders a (simple) expression for use in lock-identity keys
// and messages: identifiers, selectors, parens, stars and indexes.
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.StarExpr:
		return "*" + ExprString(e.X)
	case *ast.IndexExpr:
		return ExprString(e.X) + "[...]"
	case *ast.CallExpr:
		return ExprString(e.Fun) + "()"
	default:
		return fmt.Sprintf("%T", e)
	}
}
