package token

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	got := Tokenize("Show the names of stadiums")
	want := []string{"show", "the", "names", "of", "stadiu", "ms"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTokenizePunctuation(t *testing.T) {
	got := Tokenize("a,b.c")
	want := []string{"a", ",", "b", ".", "c"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("Tokenize(%q) = %v, want %v", "a,b.c", got, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v, want empty", got)
	}
	if got := Count("   \t\n "); got != 0 {
		t.Errorf("Count(whitespace) = %d, want 0", got)
	}
}

func TestTokenizeLongWordSplit(t *testing.T) {
	got := Tokenize("internationalization")
	// 20 runes -> pieces of 6,6,6,2.
	if len(got) != 4 {
		t.Fatalf("Tokenize long word: got %d pieces %v, want 4", len(got), got)
	}
	if strings.Join(got, "") != "internationalization" {
		t.Errorf("pieces do not reassemble the word: %v", got)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("日本語 test")
	if len(got) == 0 {
		t.Fatal("Tokenize unicode returned no tokens")
	}
}

func TestCountMatchesTokenize(t *testing.T) {
	f := func(s string) bool {
		return Count(s) == len(Tokenize(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizeDeterministic(t *testing.T) {
	f := func(s string) bool {
		a := Tokenize(s)
		b := Tokenize(s)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizeCaseInsensitive(t *testing.T) {
	a := Tokenize("SELECT Name FROM Stadium")
	b := Tokenize("select name from stadium")
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Errorf("tokenization is case sensitive: %v vs %v", a, b)
	}
}

func TestEachMatchesTokenize(t *testing.T) {
	var tok Tokenizer
	f := func(s string) bool {
		want := tok.Tokenize(s)
		var got []string
		tok.Each(s, func(piece []byte) { got = append(got, string(piece)) })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// tokenizerInputs generates adversarial tokenizer inputs: dense unicode,
// punctuation runs, words far beyond MaxPiece, and boundary whitespace —
// the classes where Count and Tokenize historically risk diverging.
func tokenizerInputs() []string {
	long := strings.Repeat("überlängenwörter", 40)
	return []string{
		"",
		" ",
		"\t\n\r ",
		"a",
		".",
		"...!!!???,,,",
		"word",
		"word.",
		".word",
		"a,b.c;d:e",
		long,
		long + " " + long,
		"日本語のテキスト処理",
		"ελληνικά και ΚΕΦΑΛΑΙΑ",
		"mixedASCIIと日本語123",
		"emoji 🚀🔥 inside",
		"combining á marks",
		"tab\tseparated\nlines\rhere",
		"123456789012345678901234567890",
		"under_score-dash",
		strings.Repeat("🚀", 25),
		strings.Repeat("x", 1) + strings.Repeat("𝔘", 13),
		" nbsp separated words",
	}
}

// TestCountMatchesTokenizeAdversarial pins Count(s) == len(Tokenize(s)) on
// hand-built unicode / punctuation / long-word inputs in addition to the
// quick.Check fuzzing above. Both now share one streaming scan (Each), so a
// divergence means the scan itself is broken, not just one consumer.
func TestCountMatchesTokenizeAdversarial(t *testing.T) {
	for _, s := range tokenizerInputs() {
		if got, want := Count(s), len(Tokenize(s)); got != want {
			t.Errorf("Count(%.40q) = %d, len(Tokenize) = %d", s, got, want)
		}
	}
}

func TestTokenizePiecesRespectMaxPiece(t *testing.T) {
	for _, s := range tokenizerInputs() {
		for _, p := range Tokenize(s) {
			if n := len([]rune(p)); n > MaxPiece {
				t.Errorf("piece %q has %d runes, max %d", p, n, MaxPiece)
			}
		}
	}
}

func TestCountZeroAlloc(t *testing.T) {
	text := strings.Repeat("What are the names of stadiums that had concerts in 2014? ", 20)
	if n := testing.AllocsPerRun(100, func() { Count(text) }); n > 0 {
		t.Errorf("Count allocates %v times per call, want 0", n)
	}
}

func BenchmarkEach(b *testing.B) {
	var tok Tokenizer
	text := strings.Repeat("What are the names of stadiums that had concerts in 2014? ", 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tok.Each(text, func([]byte) {})
	}
}

func BenchmarkTokenize(b *testing.B) {
	text := strings.Repeat("What are the names of stadiums that had concerts in 2014? ", 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(text)
	}
}

func BenchmarkCount(b *testing.B) {
	text := strings.Repeat("What are the names of stadiums that had concerts in 2014? ", 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Count(text)
	}
}
