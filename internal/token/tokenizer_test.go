package token

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	got := Tokenize("Show the names of stadiums")
	want := []string{"show", "the", "names", "of", "stadiu", "ms"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTokenizePunctuation(t *testing.T) {
	got := Tokenize("a,b.c")
	want := []string{"a", ",", "b", ".", "c"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("Tokenize(%q) = %v, want %v", "a,b.c", got, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v, want empty", got)
	}
	if got := Count("   \t\n "); got != 0 {
		t.Errorf("Count(whitespace) = %d, want 0", got)
	}
}

func TestTokenizeLongWordSplit(t *testing.T) {
	got := Tokenize("internationalization")
	// 20 runes -> pieces of 6,6,6,2.
	if len(got) != 4 {
		t.Fatalf("Tokenize long word: got %d pieces %v, want 4", len(got), got)
	}
	if strings.Join(got, "") != "internationalization" {
		t.Errorf("pieces do not reassemble the word: %v", got)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("日本語 test")
	if len(got) == 0 {
		t.Fatal("Tokenize unicode returned no tokens")
	}
}

func TestCountMatchesTokenize(t *testing.T) {
	f := func(s string) bool {
		return Count(s) == len(Tokenize(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizeDeterministic(t *testing.T) {
	f := func(s string) bool {
		a := Tokenize(s)
		b := Tokenize(s)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizeCaseInsensitive(t *testing.T) {
	a := Tokenize("SELECT Name FROM Stadium")
	b := Tokenize("select name from stadium")
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Errorf("tokenization is case sensitive: %v vs %v", a, b)
	}
}

func BenchmarkTokenize(b *testing.B) {
	text := strings.Repeat("What are the names of stadiums that had concerts in 2014? ", 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(text)
	}
}

func BenchmarkCount(b *testing.B) {
	text := strings.Repeat("What are the names of stadiums that had concerts in 2014? ", 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Count(text)
	}
}
