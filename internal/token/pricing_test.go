package token

import (
	"testing"
	"testing/quick"
)

func TestCostString(t *testing.T) {
	cases := []struct {
		c    Cost
		want string
	}{
		{0, "$0.000"},
		{435000, "$0.435"},
		{1123000, "$1.123"},
		{129000, "$0.129"},
		{-500, "-$0.000"},
		{1000000, "$1.000"},
		{30, "$0.000"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("Cost(%d).String() = %q, want %q", tc.c, got, tc.want)
		}
	}
}

func TestCostDollars(t *testing.T) {
	if got := MicroUSD(435000).Dollars(); got != 0.435 {
		t.Errorf("Dollars() = %v, want 0.435", got)
	}
}

func TestPriceForTokens(t *testing.T) {
	// Mirror the paper: GPT-3.5 Turbo $0.001/1k input tokens.
	p := Price{InputPer1K: 1000, OutputPer1K: 2000}
	if got := p.ForTokens(1000, 0); got != 1000 {
		t.Errorf("1000 input tokens = %v micro-dollars, want 1000", got)
	}
	if got := p.ForTokens(500, 500); got != 500+1000 {
		t.Errorf("500/500 tokens = %v, want 1500", got)
	}
	if got := p.ForTokens(0, 0); got != 0 {
		t.Errorf("zero tokens cost %v, want 0", got)
	}
}

func TestPriceMonotone(t *testing.T) {
	p := Price{InputPer1K: 30000, OutputPer1K: 60000}
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return p.ForTokens(x, 0) <= p.ForTokens(y, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	m.Add(100, 20, 500)
	m.Add(200, 30, 700)
	if m.Calls != 2 || m.InputTokens != 300 || m.OutputTokens != 50 || m.Spend != 1200 {
		t.Errorf("meter totals wrong: %+v", m)
	}
	var o Meter
	o.Add(1, 1, 1)
	m.Merge(o)
	if m.Calls != 3 || m.Spend != 1201 {
		t.Errorf("merge wrong: %+v", m)
	}
	m.Reset()
	if m != (Meter{}) {
		t.Errorf("reset left %+v", m)
	}
}
