package token

import "fmt"

// Cost is an amount of money in micro-dollars (1e-6 USD). Integer arithmetic
// keeps benchmark cost columns exact and reproducible; the paper reports API
// cost in dollars with three decimal places, which micro-dollars represent
// without rounding drift.
type Cost int64

// MicroUSD constructs a Cost from a raw micro-dollar count.
func MicroUSD(v int64) Cost { return Cost(v) }

// Dollars returns the cost as a float64 dollar amount. Intended for display
// and for loose comparisons in tests; accounting should stay in Cost.
func (c Cost) Dollars() float64 { return float64(c) / 1e6 }

// String renders the cost like the paper's tables, e.g. "$0.435".
func (c Cost) String() string {
	neg := ""
	v := int64(c)
	if v < 0 {
		neg = "-"
		v = -v
	}
	return fmt.Sprintf("%s$%d.%03d", neg, v/1e6, (v%1e6)/1e3)
}

// Price is a per-1k-token price schedule for one model.
type Price struct {
	// InputPer1K is the cost of 1000 prompt tokens, in micro-dollars.
	InputPer1K Cost
	// OutputPer1K is the cost of 1000 completion tokens, in micro-dollars.
	OutputPer1K Cost
}

// ForTokens returns the total cost of a call with the given prompt and
// completion token counts. Partial thousands are billed pro rata, rounding
// half away from zero is unnecessary because counts are non-negative.
func (p Price) ForTokens(input, output int) Cost {
	in := int64(p.InputPer1K) * int64(input) / 1000
	out := int64(p.OutputPer1K) * int64(output) / 1000
	return Cost(in + out)
}

// Meter accumulates token usage and spend across calls. The zero value is an
// empty meter ready to use. Meter is not safe for concurrent use; wrap it if
// multiple goroutines share one.
type Meter struct {
	Calls        int
	InputTokens  int
	OutputTokens int
	Spend        Cost
}

// Add records one call.
func (m *Meter) Add(input, output int, cost Cost) {
	m.Calls++
	m.InputTokens += input
	m.OutputTokens += output
	m.Spend += cost
}

// Merge folds another meter's totals into m.
func (m *Meter) Merge(o Meter) {
	m.Calls += o.Calls
	m.InputTokens += o.InputTokens
	m.OutputTokens += o.OutputTokens
	m.Spend += o.Spend
}

// Reset zeroes the meter.
func (m *Meter) Reset() { *m = Meter{} }
