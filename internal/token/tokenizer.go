// Package token provides deterministic tokenization and cost accounting for
// the simulated LLM stack.
//
// The tokenizer is a word-piece style tokenizer: input text is split into
// words, numbers and punctuation runs, and long words are further split into
// fixed-size pieces. It is not byte-pair encoding, but it produces stable,
// realistic token counts (roughly 1.3 tokens per English word), which is all
// the billing and benchmarking layers need.
package token

import (
	"strings"
	"unicode"
)

// MaxPiece is the maximum length, in runes, of a single word piece. Words
// longer than MaxPiece are split into consecutive pieces of at most this
// length, mirroring how sub-word tokenizers fragment rare words.
const MaxPiece = 6

// Tokenizer splits text into word pieces. The zero value is ready to use.
type Tokenizer struct{}

// Tokenize returns the word pieces of text, in order.
func (Tokenizer) Tokenize(text string) []string {
	var out []string
	for _, w := range splitWords(text) {
		out = append(out, splitPieces(w)...)
	}
	return out
}

// Count returns the number of tokens in text without materializing them.
func (Tokenizer) Count(text string) int {
	n := 0
	for _, w := range splitWords(text) {
		r := []rune(w)
		n += (len(r) + MaxPiece - 1) / MaxPiece
	}
	return n
}

// Count is a convenience wrapper around Tokenizer.Count using the default
// tokenizer.
func Count(text string) int { return Tokenizer{}.Count(text) }

// Tokenize is a convenience wrapper around Tokenizer.Tokenize using the
// default tokenizer.
func Tokenize(text string) []string { return Tokenizer{}.Tokenize(text) }

// splitWords breaks text into maximal runs of letters/digits and single
// punctuation marks. Whitespace is discarded.
func splitWords(text string) []string {
	var words []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			words = append(words, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case unicode.IsSpace(r):
			flush()
		default:
			flush()
			words = append(words, string(r))
		}
	}
	flush()
	return words
}

// splitPieces fragments a single word into pieces of at most MaxPiece runes.
func splitPieces(w string) []string {
	r := []rune(w)
	if len(r) <= MaxPiece {
		return []string{w}
	}
	var pieces []string
	for len(r) > 0 {
		n := MaxPiece
		if len(r) < n {
			n = len(r)
		}
		pieces = append(pieces, string(r[:n]))
		r = r[n:]
	}
	return pieces
}
