// Package token provides deterministic tokenization and cost accounting for
// the simulated LLM stack.
//
// The tokenizer is a word-piece style tokenizer: input text is split into
// words, numbers and punctuation runs, and long words are further split into
// fixed-size pieces. It is not byte-pair encoding, but it produces stable,
// realistic token counts (roughly 1.3 tokens per English word), which is all
// the billing and benchmarking layers need.
//
// The tokenizer is pooled: Each streams pieces through a callback using a
// scratch buffer from a package-level pool, so the hot serving path
// (embedding, token counting) tokenizes without allocating. Tokenize and
// Count are both built on Each — one scan, structurally incapable of
// disagreeing about token counts.
package token

import (
	"sync"
	"unicode"
	"unicode/utf8"
)

// MaxPiece is the maximum length, in runes, of a single word piece. Words
// longer than MaxPiece are split into consecutive pieces of at most this
// length, mirroring how sub-word tokenizers fragment rare words.
const MaxPiece = 6

// Tokenizer splits text into word pieces. The zero value is ready to use.
type Tokenizer struct{}

// pieceBufPool holds the scratch buffers Each accumulates pieces in. A
// piece is at most MaxPiece runes of at most utf8.UTFMax bytes each, so a
// buffer never grows past its initial capacity.
var pieceBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, MaxPiece*utf8.UTFMax)
		return &b
	},
}

// Each calls fn once per token piece of text, in order, without
// materializing a slice. The slice passed to fn holds the piece's UTF-8
// bytes in a pooled scratch buffer that is reused for the next piece —
// fn must not retain it (copy via string(piece) to keep it).
//
// Each is the allocation-free scan underneath both Tokenize and Count.
func (Tokenizer) Each(text string, fn func(piece []byte)) {
	bp := pieceBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	runes := 0
	for _, r := range text {
		switch {
		case 'a' <= r && r <= 'z' || '0' <= r && r <= '9':
			b = append(b, byte(r))
			runes++
			if runes == MaxPiece {
				fn(b)
				b, runes = b[:0], 0
			}
		case 'A' <= r && r <= 'Z':
			b = append(b, byte(r+'a'-'A'))
			runes++
			if runes == MaxPiece {
				fn(b)
				b, runes = b[:0], 0
			}
		case r == ' ' || r == '\t' || r == '\n' || r == '\r':
			if runes > 0 {
				fn(b)
				b, runes = b[:0], 0
			}
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b = utf8.AppendRune(b, unicode.ToLower(r))
			runes++
			if runes == MaxPiece {
				fn(b)
				b, runes = b[:0], 0
			}
		case unicode.IsSpace(r):
			if runes > 0 {
				fn(b)
				b, runes = b[:0], 0
			}
		default:
			// Punctuation: flush the current word, then emit the mark as
			// its own single-rune piece, unlowered.
			if runes > 0 {
				fn(b)
				b, runes = b[:0], 0
			}
			b = utf8.AppendRune(b, r)
			fn(b)
			b = b[:0]
		}
	}
	if runes > 0 {
		fn(b)
	}
	*bp = b[:0]
	pieceBufPool.Put(bp)
}

// Tokenize returns the word pieces of text, in order.
func (t Tokenizer) Tokenize(text string) []string {
	var out []string
	t.Each(text, func(piece []byte) { out = append(out, string(piece)) })
	return out
}

// Count returns the number of tokens in text without materializing them.
// Count(s) == len(Tokenize(s)) holds by construction: both count the
// pieces emitted by the same Each scan.
func (t Tokenizer) Count(text string) int {
	n := 0
	t.Each(text, func([]byte) { n++ })
	return n
}

// Count is a convenience wrapper around Tokenizer.Count using the default
// tokenizer.
func Count(text string) int { return Tokenizer{}.Count(text) }

// Tokenize is a convenience wrapper around Tokenizer.Tokenize using the
// default tokenizer.
func Tokenize(text string) []string { return Tokenizer{}.Tokenize(text) }
