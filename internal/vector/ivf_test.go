package vector

import (
	"math/rand"
	"testing"
)

func TestIVFRecallAgainstFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, dim, k = 600, 16, 10
	items := buildItems(rng, n, dim)

	flat := NewFlat(dim, L2)
	flat.Add(items...)
	ivf := NewIVF(IVFConfig{Dim: dim, Metric: L2, NList: 12, NProbe: 6, Seed: 1})
	ivf.Add(items...)
	ivf.Train()

	hits, total := 0, 0
	for qi := 0; qi < 30; qi++ {
		q := randVec(rng, dim)
		truth := flat.Search(q, k)
		approx := ivf.Search(q, k)
		in := make(map[ID]bool, len(approx))
		for _, r := range approx {
			in[r.ID] = true
		}
		for _, r := range truth {
			total++
			if in[r.ID] {
				hits++
			}
		}
	}
	recall := float64(hits) / float64(total)
	if recall < 0.6 {
		t.Errorf("IVF recall@%d = %.2f, want >= 0.6", k, recall)
	}
}

func TestIVFFullProbeIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, dim, k = 200, 8, 5
	items := buildItems(rng, n, dim)
	flat := NewFlat(dim, Cosine)
	flat.Add(items...)
	ivf := NewIVF(IVFConfig{Dim: dim, Metric: Cosine, NList: 8, NProbe: 8, Seed: 2})
	ivf.Add(items...)
	for qi := 0; qi < 10; qi++ {
		q := randVec(rng, dim)
		truth := flat.Search(q, k)
		got := ivf.Search(q, k)
		if len(got) != len(truth) {
			t.Fatalf("len %d vs %d", len(got), len(truth))
		}
		for i := range truth {
			if got[i].ID != truth[i].ID && got[i].Score != truth[i].Score {
				t.Errorf("query %d rank %d: got %+v want %+v", qi, i, got[i], truth[i])
			}
		}
	}
}

func TestIVFLateAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ivf := NewIVF(IVFConfig{Dim: 4, Metric: L2, NList: 4, NProbe: 4, Seed: 3})
	ivf.Add(buildItems(rng, 50, 4)...)
	ivf.Train()
	// Additions after training go to existing cells and remain searchable.
	late := Item{ID: 999, Vec: randVec(rng, 4)}
	if err := ivf.Add(late); err != nil {
		t.Fatal(err)
	}
	res := ivf.Search(late.Vec, 1)
	if len(res) == 0 || res[0].ID != 999 {
		t.Errorf("late add not found: %+v", res)
	}
	if ivf.Len() != 51 {
		t.Errorf("Len = %d, want 51", ivf.Len())
	}
}

func TestIVFEmpty(t *testing.T) {
	ivf := NewIVF(IVFConfig{Dim: 4, Metric: L2})
	if res := ivf.Search(make([]float32, 4), 5); len(res) != 0 {
		t.Errorf("empty index returned %v", res)
	}
}

func TestIVFDeterministic(t *testing.T) {
	rng1 := rand.New(rand.NewSource(5))
	rng2 := rand.New(rand.NewSource(5))
	a := NewIVF(IVFConfig{Dim: 8, Metric: Cosine, NList: 6, NProbe: 3, Seed: 10})
	b := NewIVF(IVFConfig{Dim: 8, Metric: Cosine, NList: 6, NProbe: 3, Seed: 10})
	a.Add(buildItems(rng1, 120, 8)...)
	b.Add(buildItems(rng2, 120, 8)...)
	q := randVec(rand.New(rand.NewSource(6)), 8)
	ra, rb := a.Search(q, 7), b.Search(q, 7)
	if len(ra) != len(rb) {
		t.Fatal("lengths differ")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Errorf("rank %d differs: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

func TestKMeansCellCount(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ivf := NewIVF(IVFConfig{Dim: 4, Metric: L2, NList: 10, Seed: 4})
	ivf.Add(buildItems(rng, 100, 4)...)
	ivf.Train()
	if ivf.NCells() != 10 {
		t.Errorf("NCells = %d, want 10", ivf.NCells())
	}
}

func BenchmarkIVFSearch1k(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	ivf := NewIVF(IVFConfig{Dim: 64, Metric: Cosine, NList: 32, NProbe: 4, Seed: 1})
	ivf.Add(buildItems(rng, 1000, 64)...)
	ivf.Train()
	q := randVec(rng, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ivf.Search(q, 10)
	}
}
