package vector

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/embed"
)

func randItems(seed int64, n, dim int) []Item {
	r := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		v := make(embed.Vector, dim)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		items[i] = Item{ID: ID(i), Vec: v}
	}
	return items
}

func resultIDs(rs []Result) []ID {
	ids := make([]ID, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return ids
}

func sameResults(t *testing.T, label string, a, b []Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d results", label, len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Errorf("%s: rank %d ID %d vs %d", label, i, a[i].ID, b[i].ID)
		}
	}
}

// Remove satellite: removing the last element leaves a working empty index.
func TestFlatRemoveLastElement(t *testing.T) {
	f := NewFlat(4, Cosine)
	if err := f.Add(Item{ID: 1, Vec: embed.Vector{1, 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if !f.Remove(1) {
		t.Fatal("Remove(1) = false")
	}
	if f.Len() != 0 {
		t.Fatalf("Len = %d after removing last element", f.Len())
	}
	if got := f.Search(embed.Vector{1, 0, 0, 0}, 5); len(got) != 0 {
		t.Errorf("Search on emptied index returned %v", got)
	}
	if _, ok := f.Get(1); ok {
		t.Error("Get(1) succeeded after Remove")
	}
	// The index must accept new items after being emptied.
	if err := f.Add(Item{ID: 2, Vec: embed.Vector{0, 1, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if got := f.Search(embed.Vector{0, 1, 0, 0}, 1); len(got) != 1 || got[0].ID != 2 {
		t.Errorf("Search after re-fill = %v, want ID 2", got)
	}
}

// Remove satellite: a removed ID can be re-added, with a different vector,
// and searches see the new vector only.
func TestFlatReAddRemovedID(t *testing.T) {
	f := NewFlat(4, Cosine)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.Add(Item{ID: 1, Vec: embed.Vector{1, 0, 0, 0}}))
	must(f.Add(Item{ID: 2, Vec: embed.Vector{0, 1, 0, 0}}))
	if !f.Remove(1) {
		t.Fatal("Remove(1) = false")
	}
	must(f.Add(Item{ID: 1, Vec: embed.Vector{0, 0, 1, 0}}))
	got := f.Search(embed.Vector{0, 0, 1, 0}, 1)
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("Search = %v, want re-added ID 1 on top", got)
	}
	it, ok := f.Get(1)
	if !ok || it.Vec[2] != 1 {
		t.Errorf("Get(1) = %+v, want the re-added vector", it)
	}
}

// Remove satellite: concurrent Search while Remove churns must stay
// race-free (run under -race) and every returned ID must be live or
// recently-live, never garbage.
func TestFlatConcurrentSearchDuringRemove(t *testing.T) {
	const n = 600
	f := NewFlat(16, Cosine, Quantized()) // exercise the prefilter path too
	items := randItems(7, n, 16)
	if err := f.Add(items...); err != nil {
		t.Fatal(err)
	}
	q := items[0].Vec
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, r := range f.Search(q, 10) {
					if r.ID < 0 || r.ID >= n {
						panic(fmt.Sprintf("impossible result ID %d", r.ID))
					}
				}
			}
		}()
	}
	for i := n - 1; i >= n/2; i-- {
		if !f.Remove(ID(i)) {
			t.Errorf("Remove(%d) = false", i)
		}
	}
	close(stop)
	wg.Wait()
	if f.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", f.Len(), n/2)
	}
	for _, r := range f.Search(q, 10) {
		if r.ID >= n/2 {
			t.Errorf("Search returned removed ID %d", r.ID)
		}
	}
}

// The quantized prefilter must agree with the exact scan on the final
// top-k for realistic embeddings (scores are exact by construction; this
// checks the shortlist does not evict true winners).
func TestFlatQuantizedMatchesExact(t *testing.T) {
	const n, dim, k = 2000, 64, 10
	exact := NewFlat(dim, Cosine, Exact())
	quant := NewFlat(dim, Cosine, Quantized())
	items := randItems(11, n, dim)
	if err := exact.Add(items...); err != nil {
		t.Fatal(err)
	}
	if err := quant.Add(items...); err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 20; qi++ {
		q := items[qi*37%n].Vec
		er := exact.Search(q, k)
		qr := quant.Search(q, k)
		matched := 0
		em := map[ID]bool{}
		for _, r := range er {
			em[r.ID] = true
		}
		for _, r := range qr {
			if em[r.ID] {
				matched++
			}
		}
		if matched < k-1 { // allow one borderline swap at the tail
			t.Errorf("query %d: quantized top-%d matched only %d of exact %v vs %v",
				qi, k, matched, resultIDs(er), resultIDs(qr))
		}
		// Scores the two indexes agree on an ID for must be exact-equal.
		qs := map[ID]float64{}
		for _, r := range qr {
			qs[r.ID] = r.Score
		}
		for _, r := range er {
			if s, ok := qs[r.ID]; ok && s != r.Score {
				t.Errorf("query %d: ID %d quantized score %v != exact %v", qi, r.ID, s, r.Score)
			}
		}
	}
}

// Parallel sharding must return exactly the serial results. Forces
// GOMAXPROCS up so the parallel path runs even on single-core CI.
func TestFlatParallelMatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const n, dim, k = 3000, 32, 12
	items := randItems(13, n, dim)
	for _, metric := range []Metric{Cosine, Dot, L2} {
		serial := NewFlat(dim, metric, Exact(), ParallelMin(0))
		parallel := NewFlat(dim, metric, Exact(), ParallelMin(1024))
		if err := serial.Add(items...); err != nil {
			t.Fatal(err)
		}
		if err := parallel.Add(items...); err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 10; qi++ {
			q := items[qi*101%n].Vec
			sameResults(t, fmt.Sprintf("metric %v query %d", metric, qi),
				serial.Search(q, k), parallel.Search(q, k))
		}
	}
}

// Quantized + parallel combined, against the plain exact serial scan.
func TestFlatQuantizedParallelPipeline(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const n, dim, k = 5000, 48, 10
	items := randItems(17, n, dim)
	exact := NewFlat(dim, Cosine, Exact(), ParallelMin(0))
	fast := NewFlat(dim, Cosine, Quantized(), ParallelMin(1024))
	if err := exact.Add(items...); err != nil {
		t.Fatal(err)
	}
	if err := fast.Add(items...); err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 10; qi++ {
		q := items[qi*211%n].Vec
		er, fr := exact.Search(q, k), fast.Search(q, k)
		em := map[ID]bool{}
		for _, r := range er {
			em[r.ID] = true
		}
		matched := 0
		for _, r := range fr {
			if em[r.ID] {
				matched++
			}
		}
		if matched < k-1 {
			t.Errorf("query %d: combined pipeline matched %d/%d of exact", qi, matched, k)
		}
	}
}

// SearchFiltered must honor the predicate on the column-store path too.
func TestFlatFilteredOnColumnStore(t *testing.T) {
	const n, dim = 1000, 16 // above quantAutoMin
	f := NewFlat(dim, Cosine)
	items := randItems(19, n, dim)
	for i := range items {
		parity := "odd"
		if i%2 == 0 {
			parity = "even"
		}
		items[i].Attrs = map[string]string{"parity": parity}
	}
	if err := f.Add(items...); err != nil {
		t.Fatal(err)
	}
	got := f.SearchFiltered(items[0].Vec, 20, func(attrs map[string]string) bool {
		return attrs["parity"] == "even"
	})
	if len(got) == 0 {
		t.Fatal("filtered search returned nothing")
	}
	for _, r := range got {
		if r.ID%2 != 0 {
			t.Errorf("filtered search returned odd ID %d", r.ID)
		}
	}
}

// HNSW parallel layer-0 must match the sequential traversal exactly: the
// batched frontier only parallelizes pure distance computations.
func TestHNSWParallelMatchesSequential(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const n, dim, k = 1500, 24, 10
	items := randItems(23, n, dim)
	seq := NewHNSW(HNSWConfig{Dim: dim, Metric: Cosine, Seed: 42, ParallelThreshold: -1})
	par := NewHNSW(HNSWConfig{Dim: dim, Metric: Cosine, Seed: 42, ParallelThreshold: 500})
	if err := seq.Add(items...); err != nil {
		t.Fatal(err)
	}
	if err := par.Add(items...); err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 10; qi++ {
		q := items[qi*97%n].Vec
		sr, pr := seq.Search(q, k), par.Search(q, k)
		if len(pr) < len(sr) {
			t.Fatalf("query %d: parallel returned %d results, sequential %d", qi, len(pr), len(sr))
		}
		// The parallel batch explores a superset of the sequential
		// frontier, so its results must be at least as good rank-by-rank.
		for i := range sr {
			if pr[i].Score < sr[i].Score-1e-9 {
				t.Errorf("query %d rank %d: parallel score %v worse than sequential %v",
					qi, i, pr[i].Score, sr[i].Score)
			}
		}
	}
}

// IVF with Quantized cells must track the exact-cell configuration closely.
func TestIVFQuantizedRecall(t *testing.T) {
	const n, dim, k = 2000, 32, 10
	items := randItems(29, n, dim)
	exact := NewIVF(IVFConfig{Dim: dim, Metric: Cosine, NList: 8, NProbe: 8, Seed: 1})
	quant := NewIVF(IVFConfig{Dim: dim, Metric: Cosine, NList: 8, NProbe: 8, Seed: 1, Quantized: true})
	if err := exact.Add(items...); err != nil {
		t.Fatal(err)
	}
	if err := quant.Add(items...); err != nil {
		t.Fatal(err)
	}
	var matched, total int
	for qi := 0; qi < 20; qi++ {
		q := items[qi*59%n].Vec
		em := map[ID]bool{}
		for _, r := range exact.Search(q, k) {
			em[r.ID] = true
		}
		for _, r := range quant.Search(q, k) {
			if em[r.ID] {
				matched++
			}
		}
		total += k
	}
	if recall := float64(matched) / float64(total); recall < 0.95 {
		t.Errorf("quantized IVF recall vs exact IVF = %.3f, want >= 0.95", recall)
	}
}

func TestColStoreSwapRemoveQuantized(t *testing.T) {
	s := newColStore(4, quantOn)
	vecs := []embed.Vector{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}}
	for _, v := range vecs {
		s.appendRow(v)
	}
	s.swapRemove(0) // last row moves into slot 0
	if s.n != 2 {
		t.Fatalf("n = %d, want 2", s.n)
	}
	if s.row(0)[2] != 1 {
		t.Errorf("row 0 = %v, want the old last row", s.row(0))
	}
	if s.code(0)[2] != 127 {
		t.Errorf("code 0 = %v, codes not swapped with rows", s.code(0))
	}
	s.swapRemove(1)
	s.swapRemove(0)
	if s.n != 0 || len(s.vecs) != 0 || len(s.codes) != 0 {
		t.Errorf("store not empty after removing all rows: n=%d", s.n)
	}
}
