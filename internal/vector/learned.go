package vector

import (
	"math"

	"repro/internal/embed"
)

// OrderLearner learns which hybrid execution order is cheaper from past
// query workloads — the paper's Section III-B2: "we can extract some
// significant features of the searched data and historical queries, and
// then train a classification model to predict which order to use for a
// new query."
//
// Features per query: estimated predicate selectivity, log store size, and
// the k/n ratio. The label is which order actually scanned fewer vectors.
// The model is a tiny logistic regression; Adaptive's fixed 0.25 threshold
// is exactly the kind of hand-tuned rule it replaces.
type OrderLearner struct {
	w [3]float64
	b float64

	feats  [][3]float64
	labels []bool // true = AttributeFirst was cheaper
}

// NewOrderLearner returns an untrained learner (predicts VectorFirst until
// trained, matching the permissive-predicate common case).
func NewOrderLearner() *OrderLearner { return &OrderLearner{} }

func features(selectivity float64, n, k int) [3]float64 {
	if n < 1 {
		n = 1
	}
	return [3]float64{selectivity, math.Log1p(float64(n)) / 14, float64(k) / float64(n)}
}

// Observe records one training example: the query's features plus the scan
// counts each order incurred.
func (l *OrderLearner) Observe(selectivity float64, n, k, attrFirstScanned, vectorFirstScanned int) {
	l.feats = append(l.feats, features(selectivity, n, k))
	l.labels = append(l.labels, attrFirstScanned <= vectorFirstScanned)
}

// Observations reports the training-set size.
func (l *OrderLearner) Observations() int { return len(l.feats) }

// Train fits the logistic regression by gradient descent.
func (l *OrderLearner) Train(epochs int, lr float64) {
	n := len(l.feats)
	if n == 0 {
		return
	}
	for e := 0; e < epochs; e++ {
		var gw [3]float64
		var gb float64
		for i, x := range l.feats {
			z := l.b
			for j := 0; j < 3; j++ {
				z += l.w[j] * x[j]
			}
			p := 1 / (1 + math.Exp(-z))
			y := 0.0
			if l.labels[i] {
				y = 1
			}
			d := p - y
			for j := 0; j < 3; j++ {
				gw[j] += d * x[j]
			}
			gb += d
		}
		for j := 0; j < 3; j++ {
			l.w[j] -= lr * gw[j] / float64(n)
		}
		l.b -= lr * gb / float64(n)
	}
}

// Choose predicts the cheaper order for a new query.
func (l *OrderLearner) Choose(selectivity float64, n, k int) FilterOrder {
	if len(l.feats) == 0 {
		return VectorFirst
	}
	x := features(selectivity, n, k)
	z := l.b
	for j := 0; j < 3; j++ {
		z += l.w[j] * x[j]
	}
	if 1/(1+math.Exp(-z)) >= 0.5 {
		return AttributeFirst
	}
	return VectorFirst
}

// SearchLearned runs a hybrid query with the order chosen by the learner,
// and feeds the observation back so the learner improves online. The first
// call for a query shape pays for measuring both orders occasionally
// (every probeEvery-th query) to keep collecting labels.
func (h *Hybrid) SearchLearned(q embed.Vector, k int, pred Predicate, l *OrderLearner, probe bool) ([]Result, HybridStats) {
	if pred == nil {
		return h.Search(q, k, nil, VectorFirst)
	}
	sel := h.estimateSelectivity(pred)
	n := h.store.Len()
	if probe {
		// Measure both orders and record the label.
		resA, stA := h.attributeFirst(q, k, pred)
		_, stV := h.vectorFirst(q, k, pred)
		l.Observe(sel, n, k, stA.Scanned, stV.Scanned)
		stA.SelectivityEst = sel
		return resA, stA
	}
	order := l.Choose(sel, n, k)
	res, st := h.Search(q, k, pred, order)
	st.SelectivityEst = sel
	return res, st
}
