package vector

import (
	"math/rand"
	"testing"
)

func TestOrderLearnerRecoversSelectivityRule(t *testing.T) {
	l := NewOrderLearner()
	// Synthetic workload ground truth: attribute-first is cheaper when the
	// predicate is selective (scan counts reflect it).
	rng := rand.New(rand.NewSource(1))
	const n = 2000
	for i := 0; i < 400; i++ {
		sel := rng.Float64()
		attrScan := int(sel * n)              // attribute-first scans survivors
		vecScan := int(2 / (sel + 0.02) * 10) // vector-first inflates k as survivors thin
		if vecScan > n {
			vecScan = n
		}
		l.Observe(sel, n, 10, attrScan, vecScan)
	}
	l.Train(800, 2.0)

	if got := l.Choose(0.02, n, 10); got != AttributeFirst {
		t.Errorf("selective predicate chose %v", got)
	}
	if got := l.Choose(0.9, n, 10); got != VectorFirst {
		t.Errorf("permissive predicate chose %v", got)
	}
}

func TestOrderLearnerUntrainedDefault(t *testing.T) {
	l := NewOrderLearner()
	if got := l.Choose(0.01, 100, 5); got != VectorFirst {
		t.Errorf("untrained default = %v", got)
	}
	l.Train(100, 0.5) // no observations: must not panic
}

func TestSearchLearnedEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	store := buildAttrStore(rng, 800, 16)
	h := NewHybrid(store)
	l := NewOrderLearner()

	selective := And(AttrEquals("tenant", "t1"), AttrEquals("modality", "text"))
	permissive := func(attrs map[string]string) bool { return attrs["modality"] != "image" }

	// Probe phase: measure both orders on a mixed workload.
	for i := 0; i < 30; i++ {
		pred := selective
		if i%2 == 0 {
			pred = permissive
		}
		h.SearchLearned(randVec(rng, 16), 10, pred, l, true)
	}
	if l.Observations() != 30 {
		t.Fatalf("observations = %d", l.Observations())
	}
	l.Train(800, 2.0)

	// Exploitation phase: the learner should route each predicate to its
	// cheaper order.
	_, stSel := h.SearchLearned(randVec(rng, 16), 10, selective, l, false)
	if stSel.Order != AttributeFirst {
		t.Errorf("selective predicate routed %v (est %.3f)", stSel.Order, stSel.SelectivityEst)
	}
	_, stPerm := h.SearchLearned(randVec(rng, 16), 10, permissive, l, false)
	if stPerm.Order != VectorFirst {
		t.Errorf("permissive predicate routed %v (est %.3f)", stPerm.Order, stPerm.SelectivityEst)
	}

	// Results under the learned route match the exact attribute-first scan.
	resL, _ := h.SearchLearned(randVec(rng, 16), 5, selective, l, false)
	for _, r := range resL {
		it, _ := store.Get(r.ID)
		if !selective(it.Attrs) {
			t.Errorf("learned route returned non-matching item %d", r.ID)
		}
	}
}

func TestSearchLearnedNilPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	store := buildAttrStore(rng, 100, 8)
	h := NewHybrid(store)
	l := NewOrderLearner()
	res, _ := h.SearchLearned(randVec(rng, 8), 5, nil, l, false)
	if len(res) != 5 {
		t.Errorf("nil predicate returned %d", len(res))
	}
}
