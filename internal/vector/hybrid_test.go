package vector

import (
	"fmt"
	"math/rand"
	"testing"
)

func buildAttrStore(rng *rand.Rand, n, dim int) *Flat {
	f := NewFlat(dim, Cosine)
	for i := 0; i < n; i++ {
		modality := "text"
		switch i % 4 {
		case 1:
			modality = "table"
		case 2:
			modality = "image"
		}
		f.Add(Item{
			ID:  ID(i),
			Vec: randVec(rng, dim),
			Attrs: map[string]string{
				"modality": modality,
				"tenant":   fmt.Sprintf("t%d", i%10),
			},
		})
	}
	return f
}

func TestHybridOrdersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	store := buildAttrStore(rng, 400, 16)
	h := NewHybrid(store)
	pred := AttrEquals("modality", "image")
	q := randVec(rng, 16)

	af, _ := h.Search(q, 10, pred, AttributeFirst)
	vf, _ := h.Search(q, 10, pred, VectorFirst)
	ad, _ := h.Search(q, 10, pred, Adaptive)

	if len(af) == 0 {
		t.Fatal("attribute-first returned nothing")
	}
	// All strategies must return the same hit set for an exact base index.
	asSet := func(rs []Result) map[ID]bool {
		m := make(map[ID]bool)
		for _, r := range rs {
			m[r.ID] = true
		}
		return m
	}
	sa, sv, sd := asSet(af), asSet(vf), asSet(ad)
	for id := range sa {
		if !sv[id] || !sd[id] {
			t.Errorf("strategies disagree on id %d", id)
		}
	}
}

func TestHybridResultsSatisfyPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	store := buildAttrStore(rng, 200, 8)
	h := NewHybrid(store)
	pred := And(AttrEquals("modality", "table"), AttrEquals("tenant", "t1"))
	q := randVec(rng, 8)
	for _, order := range []FilterOrder{AttributeFirst, VectorFirst, Adaptive} {
		res, _ := h.Search(q, 5, pred, order)
		for _, r := range res {
			it, _ := store.Get(r.ID)
			if !pred(it.Attrs) {
				t.Errorf("%v returned non-matching item %d attrs %v", order, r.ID, it.Attrs)
			}
		}
	}
}

func TestHybridNilPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	store := buildAttrStore(rng, 50, 8)
	h := NewHybrid(store)
	q := randVec(rng, 8)
	res, st := h.Search(q, 5, nil, Adaptive)
	if len(res) != 5 {
		t.Errorf("nil predicate returned %d hits, want 5", len(res))
	}
	if st.Survivors != 5 {
		t.Errorf("stats survivors = %d", st.Survivors)
	}
}

func TestAdaptivePicksAttributeFirstWhenSelective(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	store := buildAttrStore(rng, 500, 8)
	h := NewHybrid(store)
	// tenant t3 AND image modality: ~2.5% selectivity -> attribute-first.
	pred := And(AttrEquals("tenant", "t3"), AttrEquals("modality", "text"))
	q := randVec(rng, 8)
	_, st := h.Search(q, 3, pred, Adaptive)
	if st.Order != AttributeFirst {
		t.Errorf("adaptive picked %v for selective predicate (est %.3f)", st.Order, st.SelectivityEst)
	}
	// Permissive predicate (75% of items are not image) -> vector-first.
	perm := func(attrs map[string]string) bool { return attrs["modality"] != "image" }
	_, st = h.Search(q, 3, perm, Adaptive)
	if st.Order != VectorFirst {
		t.Errorf("adaptive picked %v for permissive predicate (est %.3f)", st.Order, st.SelectivityEst)
	}
}

func TestInflationAdapts(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	store := buildAttrStore(rng, 400, 8)
	h := NewHybrid(store)
	before := h.InflationFactor()
	// Selective predicate in vector-first mode forces widening; the learned
	// inflation factor should grow.
	pred := AttrEquals("tenant", "t7")
	for i := 0; i < 10; i++ {
		h.Search(randVec(rng, 8), 5, pred, VectorFirst)
	}
	after := h.InflationFactor()
	if after <= before {
		t.Errorf("inflation did not grow: before %.2f after %.2f", before, after)
	}
}

func TestFilterOrderString(t *testing.T) {
	if AttributeFirst.String() != "attribute-first" || VectorFirst.String() != "vector-first" || Adaptive.String() != "adaptive" {
		t.Error("order names wrong")
	}
}

func BenchmarkHybridAttributeFirst(b *testing.B) {
	rng := rand.New(rand.NewSource(67))
	store := buildAttrStore(rng, 2000, 32)
	h := NewHybrid(store)
	pred := AttrEquals("modality", "image")
	q := randVec(rng, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Search(q, 10, pred, AttributeFirst)
	}
}

func BenchmarkHybridVectorFirst(b *testing.B) {
	rng := rand.New(rand.NewSource(71))
	store := buildAttrStore(rng, 2000, 32)
	h := NewHybrid(store)
	pred := AttrEquals("modality", "image")
	q := randVec(rng, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Search(q, 10, pred, VectorFirst)
	}
}
