package vector

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/embed"
)

// HNSW is a hierarchical navigable small world graph index, the structure
// behind most production approximate-nearest-neighbor systems. Inserts build
// a multi-layer proximity graph; queries greedily descend from the sparse
// top layer and then run a best-first beam search on the base layer.
// HNSW is safe for concurrent use.
type HNSW struct {
	mu     sync.RWMutex
	metric Metric
	dim    int
	m      int // max neighbors per node per upper layer (2m at layer 0)
	efCons int
	efSrch int
	levelP float64
	rng    *rand.Rand

	nodes []hnswNode
	byID  map[ID]int
	entry int // index into nodes of the entry point, -1 if empty
	maxL  int
}

type hnswNode struct {
	item  Item
	level int
	// neighbors[l] lists node indexes adjacent at layer l.
	neighbors [][]int
}

// HNSWConfig parameterizes an HNSW index.
type HNSWConfig struct {
	Dim    int
	Metric Metric
	// M is the graph degree parameter. Defaults to 8.
	M int
	// EfConstruction is the construction beam width. Defaults to 64.
	EfConstruction int
	// EfSearch is the query beam width. Defaults to 32.
	EfSearch int
	// Seed drives random level assignment; fixed for reproducibility.
	Seed int64
}

// NewHNSW returns an empty HNSW index.
func NewHNSW(cfg HNSWConfig) *HNSW {
	if cfg.Dim <= 0 {
		panic("vector: non-positive dimension")
	}
	if cfg.M <= 0 {
		cfg.M = 8
	}
	if cfg.EfConstruction <= 0 {
		cfg.EfConstruction = 64
	}
	if cfg.EfSearch <= 0 {
		cfg.EfSearch = 32
	}
	return &HNSW{
		metric: cfg.Metric,
		dim:    cfg.Dim,
		m:      cfg.M,
		efCons: cfg.EfConstruction,
		efSrch: cfg.EfSearch,
		levelP: 1 / math.E,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		byID:   make(map[ID]int),
		entry:  -1,
	}
}

// dist is the search distance: lower is closer, for any metric.
func (h *HNSW) dist(a, b embed.Vector) float64 { return -h.metric.Score(a, b) }

// randomLevel draws a level from the standard HNSW geometric distribution.
func (h *HNSW) randomLevel() int {
	lvl := 0
	for h.rng.Float64() < h.levelP && lvl < 32 {
		lvl++
	}
	return lvl
}

// Add implements Index.
func (h *HNSW) Add(items ...Item) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, it := range items {
		if len(it.Vec) != h.dim {
			return fmt.Errorf("%w: item %d has dim %d, index dim %d", ErrDimMismatch, it.ID, len(it.Vec), h.dim)
		}
		if _, ok := h.byID[it.ID]; ok {
			return fmt.Errorf("%w: %d", ErrDuplicateID, it.ID)
		}
		h.insertLocked(it)
	}
	return nil
}

func (h *HNSW) insertLocked(it Item) {
	level := h.randomLevel()
	n := hnswNode{item: it, level: level, neighbors: make([][]int, level+1)}
	idx := len(h.nodes)
	h.nodes = append(h.nodes, n)
	h.byID[it.ID] = idx

	if h.entry == -1 {
		h.entry = idx
		h.maxL = level
		return
	}

	cur := h.entry
	// Greedy descent through layers above the new node's level.
	for l := h.maxL; l > level; l-- {
		cur = h.greedyClosestLocked(it.Vec, cur, l)
	}
	// Insert with beam search on each layer from min(level, maxL) down to 0.
	top := level
	if top > h.maxL {
		top = h.maxL
	}
	for l := top; l >= 0; l-- {
		cands := h.searchLayerLocked(it.Vec, cur, h.efCons, l)
		max := h.m
		if l == 0 {
			max = 2 * h.m
		}
		sel := cands
		if len(sel) > max {
			sel = sel[:max]
		}
		for _, c := range sel {
			h.nodes[idx].neighbors[l] = append(h.nodes[idx].neighbors[l], c.node)
			h.nodes[c.node].neighbors[l] = append(h.nodes[c.node].neighbors[l], idx)
			h.pruneLocked(c.node, l)
		}
		if len(cands) > 0 {
			cur = cands[0].node
		}
	}
	if level > h.maxL {
		h.maxL = level
		h.entry = idx
	}
}

// pruneLocked trims node's neighbor list at layer l back to the degree bound,
// keeping the closest neighbors.
func (h *HNSW) pruneLocked(node, l int) {
	max := h.m
	if l == 0 {
		max = 2 * h.m
	}
	nb := h.nodes[node].neighbors[l]
	if len(nb) <= max {
		return
	}
	v := h.nodes[node].item.Vec
	type nd struct {
		n int
		d float64
	}
	ds := make([]nd, len(nb))
	for i, x := range nb {
		ds[i] = nd{x, h.dist(v, h.nodes[x].item.Vec)}
	}
	// Selection by distance, deterministic tie-break on node index.
	for i := 0; i < max; i++ {
		best := i
		for j := i + 1; j < len(ds); j++ {
			if ds[j].d < ds[best].d || (ds[j].d == ds[best].d && ds[j].n < ds[best].n) {
				best = j
			}
		}
		ds[i], ds[best] = ds[best], ds[i]
	}
	out := make([]int, max)
	for i := 0; i < max; i++ {
		out[i] = ds[i].n
	}
	h.nodes[node].neighbors[l] = out
}

// greedyClosestLocked walks layer l greedily from start toward q.
func (h *HNSW) greedyClosestLocked(q embed.Vector, start, l int) int {
	cur := start
	curD := h.dist(q, h.nodes[cur].item.Vec)
	for {
		improved := false
		for _, nb := range h.nodes[cur].neighbors[l] {
			if d := h.dist(q, h.nodes[nb].item.Vec); d < curD {
				cur, curD = nb, d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

type hnswCand struct {
	node int
	d    float64
}

// candHeap is a min-heap by distance.
type candHeap []hnswCand

func (c candHeap) Len() int            { return len(c) }
func (c candHeap) Less(i, j int) bool  { return c[i].d < c[j].d }
func (c candHeap) Swap(i, j int)       { c[i], c[j] = c[j], c[i] }
func (c *candHeap) Push(x interface{}) { *c = append(*c, x.(hnswCand)) }
func (c *candHeap) Pop() interface{} {
	old := *c
	n := len(old)
	x := old[n-1]
	*c = old[:n-1]
	return x
}

// farHeap is a max-heap by distance (worst of the current beam on top).
type farHeap []hnswCand

func (c farHeap) Len() int            { return len(c) }
func (c farHeap) Less(i, j int) bool  { return c[i].d > c[j].d }
func (c farHeap) Swap(i, j int)       { c[i], c[j] = c[j], c[i] }
func (c *farHeap) Push(x interface{}) { *c = append(*c, x.(hnswCand)) }
func (c *farHeap) Pop() interface{} {
	old := *c
	n := len(old)
	x := old[n-1]
	*c = old[:n-1]
	return x
}

// searchLayerLocked runs the HNSW best-first beam search on layer l and
// returns up to ef candidates sorted by ascending distance.
func (h *HNSW) searchLayerLocked(q embed.Vector, start, ef, l int) []hnswCand {
	visited := map[int]bool{start: true}
	d0 := h.dist(q, h.nodes[start].item.Vec)
	cands := candHeap{{start, d0}}
	best := farHeap{{start, d0}}
	for len(cands) > 0 {
		c := heap.Pop(&cands).(hnswCand)
		if len(best) >= ef && c.d > best[0].d {
			break
		}
		for _, nb := range h.nodes[c.node].neighbors[l] {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			d := h.dist(q, h.nodes[nb].item.Vec)
			if len(best) < ef || d < best[0].d {
				heap.Push(&cands, hnswCand{nb, d})
				heap.Push(&best, hnswCand{nb, d})
				if len(best) > ef {
					heap.Pop(&best)
				}
			}
		}
	}
	out := make([]hnswCand, len(best))
	copy(out, best)
	// Sort ascending by distance, tie-break on node for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].d < out[j-1].d || (out[j].d == out[j-1].d && out[j].node < out[j-1].node)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Search implements Index.
func (h *HNSW) Search(q embed.Vector, k int) []Result {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.entry == -1 || k <= 0 {
		return nil
	}
	cur := h.entry
	for l := h.maxL; l > 0; l-- {
		cur = h.greedyClosestLocked(q, cur, l)
	}
	ef := h.efSrch
	if ef < k {
		ef = k
	}
	cands := h.searchLayerLocked(q, cur, ef, 0)
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]Result, len(cands))
	for i, c := range cands {
		out[i] = Result{ID: h.nodes[c.node].item.ID, Score: -c.d}
	}
	return out
}

// Len implements Index.
func (h *HNSW) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.nodes)
}

// MaxLevel reports the current top layer (for tests and diagnostics).
func (h *HNSW) MaxLevel() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.maxL
}
