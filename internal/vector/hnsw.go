package vector

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/embed"
	"repro/internal/obs"
)

// HNSW is a hierarchical navigable small world graph index, the structure
// behind most production approximate-nearest-neighbor systems. Inserts build
// a multi-layer proximity graph; queries greedily descend from the sparse
// top layer and then run a best-first beam search on the base layer.
//
// The beam search runs on pooled scratch state (an epoch-stamped visited
// array and reusable heaps), node norms are cached at insert so cosine
// distance is one dot product per edge, and on large graphs the layer-0
// frontier is expanded in parallel batches (see searchLayerLocked).
// HNSW is safe for concurrent use.
type HNSW struct {
	mu          sync.RWMutex
	metric      Metric
	dim         int
	m           int // max neighbors per node per upper layer (2m at layer 0)
	efCons      int
	efSrch      int
	parallelMin int
	levelP      float64
	rng         *rand.Rand

	nodes []hnswNode
	norms []float32 // L2 norm per node, aligned with nodes
	byID  map[ID]int
	entry int // index into nodes of the entry point, -1 if empty
	maxL  int

	scratch sync.Pool // *hnswScratch
}

type hnswNode struct {
	item  Item
	level int
	// neighbors[l] lists node indexes adjacent at layer l.
	neighbors [][]int
}

// HNSWConfig parameterizes an HNSW index.
type HNSWConfig struct {
	Dim    int
	Metric Metric
	// M is the graph degree parameter. Defaults to 8.
	M int
	// EfConstruction is the construction beam width. Defaults to 64.
	EfConstruction int
	// EfSearch is the query beam width. Defaults to 32.
	EfSearch int
	// Seed drives random level assignment; fixed for reproducibility.
	Seed int64
	// ParallelThreshold is the graph size at which layer-0 frontier
	// expansion parallelizes (when GOMAXPROCS > 1). 0 means the default
	// (8192); negative disables parallel search entirely.
	ParallelThreshold int
}

// hnswParallelMin is the default HNSWConfig.ParallelThreshold: below this
// many nodes a beam search finishes in tens of microseconds and goroutine
// handoff would dominate.
const hnswParallelMin = 8192

// NewHNSW returns an empty HNSW index.
func NewHNSW(cfg HNSWConfig) *HNSW {
	if cfg.Dim <= 0 {
		panic("vector: non-positive dimension")
	}
	if cfg.M <= 0 {
		cfg.M = 8
	}
	if cfg.EfConstruction <= 0 {
		cfg.EfConstruction = 64
	}
	if cfg.EfSearch <= 0 {
		cfg.EfSearch = 32
	}
	if cfg.ParallelThreshold == 0 {
		cfg.ParallelThreshold = hnswParallelMin
	}
	h := &HNSW{
		metric:      cfg.Metric,
		dim:         cfg.Dim,
		m:           cfg.M,
		efCons:      cfg.EfConstruction,
		efSrch:      cfg.EfSearch,
		parallelMin: cfg.ParallelThreshold,
		levelP:      1 / math.E,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		byID:        make(map[ID]int),
		entry:       -1,
	}
	h.scratch.New = func() any { return &hnswScratch{} }
	return h
}

// hnswQuery is the per-search hoisted state: the query vector and its norm,
// computed once instead of per visited edge.
type hnswQuery struct {
	q     embed.Vector
	qnorm float64
}

func (h *HNSW) prepare(q embed.Vector) hnswQuery {
	return hnswQuery{q: q, qnorm: embed.Norm(q)}
}

// distNode is the search distance (lower is closer) from the prepared
// query to node n, using the cached node norm.
func (h *HNSW) distNode(p *hnswQuery, n int) float64 {
	v := h.nodes[n].item.Vec
	switch h.metric {
	case Cosine:
		denom := p.qnorm * float64(h.norms[n])
		if denom == 0 {
			return 0
		}
		return -embed.Dot(p.q, v) / denom
	case Dot:
		return -embed.Dot(p.q, v)
	default: // L2
		return math.Sqrt(embed.SqL2(p.q, v))
	}
}

// distNodes is the search distance between two stored nodes.
func (h *HNSW) distNodes(a, b int) float64 {
	switch h.metric {
	case Cosine:
		denom := float64(h.norms[a]) * float64(h.norms[b])
		if denom == 0 {
			return 0
		}
		return -embed.Dot(h.nodes[a].item.Vec, h.nodes[b].item.Vec) / denom
	case Dot:
		return -embed.Dot(h.nodes[a].item.Vec, h.nodes[b].item.Vec)
	default: // L2
		return math.Sqrt(embed.SqL2(h.nodes[a].item.Vec, h.nodes[b].item.Vec))
	}
}

// randomLevel draws a level from the standard HNSW geometric distribution.
func (h *HNSW) randomLevel() int {
	lvl := 0
	for h.rng.Float64() < h.levelP && lvl < 32 {
		lvl++
	}
	return lvl
}

// Add implements Index.
func (h *HNSW) Add(items ...Item) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, it := range items {
		if len(it.Vec) != h.dim {
			return fmt.Errorf("%w: item %d has dim %d, index dim %d", ErrDimMismatch, it.ID, len(it.Vec), h.dim)
		}
		if _, ok := h.byID[it.ID]; ok {
			return fmt.Errorf("%w: %d", ErrDuplicateID, it.ID)
		}
		h.insertLocked(it)
	}
	return nil
}

func (h *HNSW) insertLocked(it Item) {
	level := h.randomLevel()
	n := hnswNode{item: it, level: level, neighbors: make([][]int, level+1)}
	idx := len(h.nodes)
	h.nodes = append(h.nodes, n)
	h.norms = append(h.norms, float32(embed.Norm(it.Vec)))
	h.byID[it.ID] = idx

	if h.entry == -1 {
		h.entry = idx
		h.maxL = level
		return
	}

	p := h.prepare(it.Vec)
	cur := h.entry
	// Greedy descent through layers above the new node's level.
	for l := h.maxL; l > level; l-- {
		cur = h.greedyClosestLocked(&p, cur, l)
	}
	// Insert with beam search on each layer from min(level, maxL) down to 0.
	top := level
	if top > h.maxL {
		top = h.maxL
	}
	sc := h.scratch.Get().(*hnswScratch)
	for l := top; l >= 0; l-- {
		cands := h.searchLayerLocked(sc, &p, cur, h.efCons, l, false)
		max := h.m
		if l == 0 {
			max = 2 * h.m
		}
		sel := cands
		if len(sel) > max {
			sel = sel[:max]
		}
		for _, c := range sel {
			h.nodes[idx].neighbors[l] = append(h.nodes[idx].neighbors[l], c.node)
			h.nodes[c.node].neighbors[l] = append(h.nodes[c.node].neighbors[l], idx)
			h.pruneLocked(c.node, l)
		}
		if len(cands) > 0 {
			cur = cands[0].node
		}
	}
	h.scratch.Put(sc)
	if level > h.maxL {
		h.maxL = level
		h.entry = idx
	}
}

// pruneLocked trims node's neighbor list at layer l back to the degree bound,
// keeping the closest neighbors.
func (h *HNSW) pruneLocked(node, l int) {
	max := h.m
	if l == 0 {
		max = 2 * h.m
	}
	nb := h.nodes[node].neighbors[l]
	if len(nb) <= max {
		return
	}
	type nd struct {
		n int
		d float64
	}
	ds := make([]nd, len(nb))
	for i, x := range nb {
		ds[i] = nd{x, h.distNodes(node, x)}
	}
	// Selection by distance, deterministic tie-break on node index.
	for i := 0; i < max; i++ {
		best := i
		for j := i + 1; j < len(ds); j++ {
			if ds[j].d < ds[best].d || (ds[j].d == ds[best].d && ds[j].n < ds[best].n) {
				best = j
			}
		}
		ds[i], ds[best] = ds[best], ds[i]
	}
	out := make([]int, max)
	for i := 0; i < max; i++ {
		out[i] = ds[i].n
	}
	h.nodes[node].neighbors[l] = out
}

// greedyClosestLocked walks layer l greedily from start toward q.
func (h *HNSW) greedyClosestLocked(p *hnswQuery, start, l int) int {
	cur := start
	curD := h.distNode(p, cur)
	for {
		improved := false
		for _, nb := range h.nodes[cur].neighbors[l] {
			if d := h.distNode(p, nb); d < curD {
				cur, curD = nb, d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

type hnswCand struct {
	node int
	d    float64
}

// candHeap is a min-heap by distance.
type candHeap []hnswCand

func (c candHeap) Len() int            { return len(c) }
func (c candHeap) Less(i, j int) bool  { return c[i].d < c[j].d }
func (c candHeap) Swap(i, j int)       { c[i], c[j] = c[j], c[i] }
func (c *candHeap) Push(x interface{}) { *c = append(*c, x.(hnswCand)) }
func (c *candHeap) Pop() interface{} {
	old := *c
	n := len(old)
	x := old[n-1]
	*c = old[:n-1]
	return x
}

// farHeap is a max-heap by distance (worst of the current beam on top).
type farHeap []hnswCand

func (c farHeap) Len() int            { return len(c) }
func (c farHeap) Less(i, j int) bool  { return c[i].d > c[j].d }
func (c farHeap) Swap(i, j int)       { c[i], c[j] = c[j], c[i] }
func (c *farHeap) Push(x interface{}) { *c = append(*c, x.(hnswCand)) }
func (c *farHeap) Pop() interface{} {
	old := *c
	n := len(old)
	x := old[n-1]
	*c = old[:n-1]
	return x
}

// hnswScratch is pooled per-search state. The visited set is an
// epoch-stamped array: marking is one store, resetting is one increment,
// and the array is reused across searches, so the beam search allocates
// nothing in steady state.
type hnswScratch struct {
	visited []uint32
	epoch   uint32
	cands   candHeap
	best    farHeap
	batch   []int
	nbrs    []int
	dists   []float64
}

func (sc *hnswScratch) reset(n int) {
	if len(sc.visited) < n {
		sc.visited = append(sc.visited, make([]uint32, n-len(sc.visited))...)
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stale stamps could alias, clear once
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.epoch = 1
	}
	sc.cands = sc.cands[:0]
	sc.best = sc.best[:0]
}

func (sc *hnswScratch) seen(n int) bool { return sc.visited[n] == sc.epoch }
func (sc *hnswScratch) visit(n int)     { sc.visited[n] = sc.epoch }

// searchLayerLocked runs the HNSW best-first beam search on layer l and
// returns up to ef candidates sorted by ascending distance.
//
// With parallel set (layer 0 on large graphs), the frontier is expanded in
// batches: up to GOMAXPROCS admissible candidates are popped, their
// undiscovered neighbors deduplicated sequentially, the distance
// computations — the only expensive part — fanned out across workers, and
// the heap updates applied sequentially. Batch selection, visited marking
// and heap mutation all stay single-threaded, so the result is
// deterministic for a given graph; with one worker the batch is one
// candidate and the traversal is exactly the classic sequential search.
func (h *HNSW) searchLayerLocked(sc *hnswScratch, p *hnswQuery, start, ef, l int, parallel bool) []hnswCand {
	sc.reset(len(h.nodes))
	sc.visit(start)
	d0 := h.distNode(p, start)
	sc.cands = append(sc.cands, hnswCand{start, d0})
	sc.best = append(sc.best, hnswCand{start, d0})
	workers := 1
	if parallel && l == 0 {
		workers = min(runtime.GOMAXPROCS(0), maxScanWorkers)
	}
	for len(sc.cands) > 0 {
		c := heap.Pop(&sc.cands).(hnswCand)
		if len(sc.best) >= ef && c.d > sc.best[0].d {
			break
		}
		sc.batch = append(sc.batch[:0], c.node)
		for workers > 1 && len(sc.batch) < workers && len(sc.cands) > 0 {
			if len(sc.best) >= ef && sc.cands[0].d > sc.best[0].d {
				break
			}
			c2 := heap.Pop(&sc.cands).(hnswCand)
			sc.batch = append(sc.batch, c2.node)
		}
		sc.nbrs = sc.nbrs[:0]
		for _, b := range sc.batch {
			for _, nb := range h.nodes[b].neighbors[l] {
				if sc.seen(nb) {
					continue
				}
				sc.visit(nb)
				sc.nbrs = append(sc.nbrs, nb)
			}
		}
		if cap(sc.dists) < len(sc.nbrs) {
			sc.dists = make([]float64, len(sc.nbrs))
		}
		sc.dists = sc.dists[:len(sc.nbrs)]
		if workers > 1 && len(sc.nbrs) >= 2*workers {
			h.distBatch(p, sc.nbrs, sc.dists, workers)
		} else {
			for i, nb := range sc.nbrs {
				sc.dists[i] = h.distNode(p, nb)
			}
		}
		for i, nb := range sc.nbrs {
			d := sc.dists[i]
			if len(sc.best) < ef || d < sc.best[0].d {
				heap.Push(&sc.cands, hnswCand{nb, d})
				heap.Push(&sc.best, hnswCand{nb, d})
				if len(sc.best) > ef {
					heap.Pop(&sc.best)
				}
			}
		}
	}
	out := make([]hnswCand, len(sc.best))
	copy(out, sc.best)
	// Sort ascending by distance, tie-break on node for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].d < out[j-1].d || (out[j].d == out[j-1].d && out[j].node < out[j-1].node)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// distBatch computes distances from p to each node in nbrs, sharding across
// workers goroutines.
func (h *HNSW) distBatch(p *hnswQuery, nbrs []int, dists []float64, workers int) {
	chunk := (len(nbrs) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(nbrs))
		if lo >= hi {
			break
		}
		wg.Add(1)
		obs.Go(nil, "vector.hnsw_dist", func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				dists[i] = h.distNode(p, nbrs[i])
			}
		})
	}
	// Distance workers are pure reads of immutable node data; they take no
	// locks, so joining them under the index read lock cannot deadlock.
	wg.Wait()
}

// Search implements Index.
func (h *HNSW) Search(q embed.Vector, k int) []Result {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.entry == -1 || k <= 0 {
		return nil
	}
	p := h.prepare(q)
	cur := h.entry
	for l := h.maxL; l > 0; l-- {
		cur = h.greedyClosestLocked(&p, cur, l)
	}
	ef := h.efSrch
	if ef < k {
		ef = k
	}
	parallel := h.parallelMin > 0 && len(h.nodes) >= h.parallelMin && runtime.GOMAXPROCS(0) > 1
	sc := h.scratch.Get().(*hnswScratch)
	cands := h.searchLayerLocked(sc, &p, cur, ef, 0, parallel)
	h.scratch.Put(sc)
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]Result, len(cands))
	for i, c := range cands {
		out[i] = Result{ID: h.nodes[c.node].item.ID, Score: -c.d}
	}
	return out
}

// Len implements Index.
func (h *HNSW) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.nodes)
}

// MaxLevel reports the current top layer (for tests and diagnostics).
func (h *HNSW) MaxLevel() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.maxL
}
