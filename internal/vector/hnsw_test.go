package vector

import (
	"math/rand"
	"testing"
)

func TestHNSWRecallAgainstFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n, dim, k = 500, 16, 10
	items := buildItems(rng, n, dim)

	flat := NewFlat(dim, L2)
	flat.Add(items...)
	h := NewHNSW(HNSWConfig{Dim: dim, Metric: L2, M: 12, EfConstruction: 120, EfSearch: 80, Seed: 1})
	h.Add(items...)

	hits, total := 0, 0
	for qi := 0; qi < 30; qi++ {
		q := randVec(rng, dim)
		truth := flat.Search(q, k)
		approx := h.Search(q, k)
		in := make(map[ID]bool, len(approx))
		for _, r := range approx {
			in[r.ID] = true
		}
		for _, r := range truth {
			total++
			if in[r.ID] {
				hits++
			}
		}
	}
	recall := float64(hits) / float64(total)
	if recall < 0.85 {
		t.Errorf("HNSW recall@%d = %.2f, want >= 0.85", k, recall)
	}
}

func TestHNSWSelfQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	items := buildItems(rng, 100, 8)
	h := NewHNSW(HNSWConfig{Dim: 8, Metric: L2, Seed: 2})
	h.Add(items...)
	// Querying with a stored vector must return that item first.
	for i := 0; i < 20; i++ {
		it := items[rng.Intn(len(items))]
		res := h.Search(it.Vec, 1)
		if len(res) != 1 || res[0].ID != it.ID {
			t.Errorf("self query for %d returned %+v", it.ID, res)
		}
	}
}

func TestHNSWEmptyAndSmall(t *testing.T) {
	h := NewHNSW(HNSWConfig{Dim: 4, Metric: Cosine, Seed: 3})
	if res := h.Search(make([]float32, 4), 5); res != nil {
		t.Errorf("empty search = %v, want nil", res)
	}
	h.Add(Item{ID: 1, Vec: []float32{1, 0, 0, 0}})
	res := h.Search([]float32{1, 0, 0, 0}, 5)
	if len(res) != 1 || res[0].ID != 1 {
		t.Errorf("single-item search = %+v", res)
	}
}

func TestHNSWDuplicateID(t *testing.T) {
	h := NewHNSW(HNSWConfig{Dim: 2, Metric: L2, Seed: 4})
	h.Add(Item{ID: 5, Vec: []float32{0, 0}})
	if err := h.Add(Item{ID: 5, Vec: []float32{1, 1}}); err == nil {
		t.Error("duplicate add succeeded")
	}
}

func TestHNSWDeterministic(t *testing.T) {
	mk := func() *HNSW {
		rng := rand.New(rand.NewSource(23))
		h := NewHNSW(HNSWConfig{Dim: 8, Metric: Cosine, M: 6, Seed: 99})
		h.Add(buildItems(rng, 150, 8)...)
		return h
	}
	a, b := mk(), mk()
	q := randVec(rand.New(rand.NewSource(29)), 8)
	ra, rb := a.Search(q, 10), b.Search(q, 10)
	if len(ra) != len(rb) {
		t.Fatal("lengths differ")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Errorf("rank %d: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

func TestHNSWDegreeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m := 4
	h := NewHNSW(HNSWConfig{Dim: 8, Metric: L2, M: m, Seed: 7})
	h.Add(buildItems(rng, 300, 8)...)
	for i, n := range h.nodes {
		for l, nbs := range n.neighbors {
			max := m
			if l == 0 {
				max = 2 * m
			}
			if len(nbs) > max {
				t.Fatalf("node %d layer %d degree %d > %d", i, l, len(nbs), max)
			}
		}
	}
}

func BenchmarkHNSWSearch1k(b *testing.B) {
	rng := rand.New(rand.NewSource(37))
	h := NewHNSW(HNSWConfig{Dim: 64, Metric: Cosine, M: 12, Seed: 1})
	h.Add(buildItems(rng, 1000, 64)...)
	q := randVec(rng, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Search(q, 10)
	}
}

func BenchmarkHNSWInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	h := NewHNSW(HNSWConfig{Dim: 64, Metric: Cosine, M: 12, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(Item{ID: ID(i), Vec: randVec(rng, 64)})
	}
}
