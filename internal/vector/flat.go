package vector

import (
	"fmt"
	"sync"

	"repro/internal/embed"
)

// Flat is a brute-force exact index: Search scans every stored vector. It is
// the accuracy baseline the approximate indexes are validated against, and
// the right choice for small collections such as the semantic cache.
//
// Vectors live in a contiguous column store (scan.go); once the collection
// reaches quantAutoMin rows an int8-quantized prefilter ranks the scan and
// only a shortlist is rescored exactly, so returned scores are always exact.
// Unfiltered scans over large collections shard across goroutines when
// GOMAXPROCS allows. Both behaviors are tunable via FlatOptions.
// Flat is safe for concurrent use.
type Flat struct {
	mu          sync.RWMutex
	metric      Metric
	dim         int
	store       *colStore
	items       []Item // aligned with store rows
	byID        map[ID]int
	parallelMin int
}

// FlatOption configures a Flat index at construction.
type FlatOption func(*flatConfig)

type flatConfig struct {
	mode        quantMode
	parallelMin int
}

// Exact disables the int8-quantized prefilter: every scan scores every row
// with the full-precision kernels regardless of collection size.
func Exact() FlatOption { return func(c *flatConfig) { c.mode = quantOff } }

// Quantized maintains int8 codes from the first row instead of waiting for
// the collection to reach the automatic threshold.
func Quantized() FlatOption { return func(c *flatConfig) { c.mode = quantOn } }

// ParallelMin sets the collection size at which unfiltered scans shard
// across goroutines (default flatParallelMin). n <= 0 disables sharding.
func ParallelMin(n int) FlatOption { return func(c *flatConfig) { c.parallelMin = n } }

// NewFlat returns an empty flat index over dim-dimensional vectors.
func NewFlat(dim int, metric Metric, opts ...FlatOption) *Flat {
	if dim <= 0 {
		panic("vector: non-positive dimension")
	}
	cfg := flatConfig{mode: quantAuto, parallelMin: flatParallelMin}
	for _, o := range opts {
		o(&cfg)
	}
	return &Flat{
		metric:      metric,
		dim:         dim,
		store:       newColStore(dim, cfg.mode),
		byID:        make(map[ID]int),
		parallelMin: cfg.parallelMin,
	}
}

// Add implements Index.
func (f *Flat) Add(items ...Item) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, it := range items {
		if len(it.Vec) != f.dim {
			return fmt.Errorf("%w: item %d has dim %d, index dim %d", ErrDimMismatch, it.ID, len(it.Vec), f.dim)
		}
		if _, ok := f.byID[it.ID]; ok {
			return fmt.Errorf("%w: %d", ErrDuplicateID, it.ID)
		}
		f.byID[it.ID] = len(f.items)
		f.items = append(f.items, it)
		f.store.appendRow(it.Vec)
	}
	return nil
}

// Remove deletes the item with the given ID, reporting whether it existed.
func (f *Flat) Remove(id ID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	i, ok := f.byID[id]
	if !ok {
		return false
	}
	last := len(f.items) - 1
	f.items[i] = f.items[last]
	f.byID[f.items[i].ID] = i
	f.items = f.items[:last]
	f.store.swapRemove(i)
	delete(f.byID, id)
	return true
}

// Get returns the stored item for id.
func (f *Flat) Get(id ID) (Item, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	i, ok := f.byID[id]
	if !ok {
		return Item{}, false
	}
	return f.items[i], true
}

// Search implements Index.
func (f *Flat) Search(q embed.Vector, k int) []Result {
	return f.SearchFiltered(q, k, nil)
}

// SearchFiltered is Search restricted to items whose attributes satisfy
// keep. A nil keep admits everything; filtered scans run serially and
// score exactly.
func (f *Flat) SearchFiltered(q embed.Vector, k int, keep func(attrs map[string]string) bool) []Result {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if len(q) != f.dim {
		// Mismatched query dimensionality keeps the historical per-metric
		// semantics (Cosine scores 0, Dot/L2 use the common prefix)
		// instead of feeding the column kernels an undefined layout.
		t := newTopK(k)
		for _, it := range f.items {
			if keep != nil && !keep(it.Attrs) {
				continue
			}
			t.offer(Result{ID: it.ID, Score: f.metric.Score(q, it.Vec)})
		}
		return t.results()
	}
	var keepRow func(int) bool
	if keep != nil {
		keepRow = func(i int) bool { return keep(f.items[i].Attrs) }
	}
	return f.store.search(f.metric, q, k, f.rowID, keepRow, f.parallelMin)
}

// rowID maps a store row index to its item ID.
func (f *Flat) rowID(i int) ID { return f.items[i].ID }

// Len implements Index.
func (f *Flat) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.items)
}

// Items returns a copy of the stored items in insertion-ish order. Intended
// for tests and for building derived indexes.
func (f *Flat) Items() []Item {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]Item, len(f.items))
	copy(out, f.items)
	return out
}
