package vector

import (
	"fmt"
	"sync"

	"repro/internal/embed"
)

// Flat is a brute-force exact index: Search scans every stored vector. It is
// the accuracy baseline the approximate indexes are validated against, and
// the right choice for small collections such as the semantic cache.
// Flat is safe for concurrent use.
type Flat struct {
	mu     sync.RWMutex
	metric Metric
	dim    int
	items  []Item
	byID   map[ID]int
}

// NewFlat returns an empty flat index over dim-dimensional vectors.
func NewFlat(dim int, metric Metric) *Flat {
	if dim <= 0 {
		panic("vector: non-positive dimension")
	}
	return &Flat{metric: metric, dim: dim, byID: make(map[ID]int)}
}

// Add implements Index.
func (f *Flat) Add(items ...Item) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, it := range items {
		if len(it.Vec) != f.dim {
			return fmt.Errorf("%w: item %d has dim %d, index dim %d", ErrDimMismatch, it.ID, len(it.Vec), f.dim)
		}
		if _, ok := f.byID[it.ID]; ok {
			return fmt.Errorf("%w: %d", ErrDuplicateID, it.ID)
		}
		f.byID[it.ID] = len(f.items)
		f.items = append(f.items, it)
	}
	return nil
}

// Remove deletes the item with the given ID, reporting whether it existed.
func (f *Flat) Remove(id ID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	i, ok := f.byID[id]
	if !ok {
		return false
	}
	last := len(f.items) - 1
	f.items[i] = f.items[last]
	f.byID[f.items[i].ID] = i
	f.items = f.items[:last]
	delete(f.byID, id)
	return true
}

// Get returns the stored item for id.
func (f *Flat) Get(id ID) (Item, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	i, ok := f.byID[id]
	if !ok {
		return Item{}, false
	}
	return f.items[i], true
}

// Search implements Index.
func (f *Flat) Search(q embed.Vector, k int) []Result {
	return f.SearchFiltered(q, k, nil)
}

// SearchFiltered is Search restricted to items whose attributes satisfy
// keep. A nil keep admits everything.
func (f *Flat) SearchFiltered(q embed.Vector, k int, keep func(attrs map[string]string) bool) []Result {
	f.mu.RLock()
	defer f.mu.RUnlock()
	t := newTopK(k)
	for _, it := range f.items {
		if keep != nil && !keep(it.Attrs) {
			continue
		}
		t.offer(Result{ID: it.ID, Score: f.metric.Score(q, it.Vec)})
	}
	return t.results()
}

// Len implements Index.
func (f *Flat) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.items)
}

// Items returns a copy of the stored items in insertion-ish order. Intended
// for tests and for building derived indexes.
func (f *Flat) Items() []Item {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]Item, len(f.items))
	copy(out, f.items)
	return out
}
