package vector

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/embed"
)

func randVec(rng *rand.Rand, dim int) embed.Vector {
	v := make(embed.Vector, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func buildItems(rng *rand.Rand, n, dim int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: ID(i), Vec: randVec(rng, dim)}
	}
	return items
}

func TestFlatAddAndSearch(t *testing.T) {
	f := NewFlat(4, Cosine)
	if err := f.Add(
		Item{ID: 1, Vec: embed.Vector{1, 0, 0, 0}},
		Item{ID: 2, Vec: embed.Vector{0, 1, 0, 0}},
		Item{ID: 3, Vec: embed.Vector{0.9, 0.1, 0, 0}},
	); err != nil {
		t.Fatal(err)
	}
	res := f.Search(embed.Vector{1, 0, 0, 0}, 2)
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	if res[0].ID != 1 || res[1].ID != 3 {
		t.Errorf("order wrong: %+v", res)
	}
}

func TestFlatDuplicateID(t *testing.T) {
	f := NewFlat(2, Cosine)
	if err := f.Add(Item{ID: 7, Vec: embed.Vector{1, 0}}); err != nil {
		t.Fatal(err)
	}
	err := f.Add(Item{ID: 7, Vec: embed.Vector{0, 1}})
	if !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate add err = %v, want ErrDuplicateID", err)
	}
}

func TestFlatDimMismatch(t *testing.T) {
	f := NewFlat(3, L2)
	err := f.Add(Item{ID: 1, Vec: embed.Vector{1, 2}})
	if !errors.Is(err, ErrDimMismatch) {
		t.Errorf("err = %v, want ErrDimMismatch", err)
	}
}

func TestFlatRemove(t *testing.T) {
	f := NewFlat(2, L2)
	f.Add(Item{ID: 1, Vec: embed.Vector{0, 0}}, Item{ID: 2, Vec: embed.Vector{1, 1}})
	if !f.Remove(1) {
		t.Fatal("Remove(1) = false")
	}
	if f.Remove(1) {
		t.Fatal("second Remove(1) = true")
	}
	if f.Len() != 1 {
		t.Errorf("Len = %d, want 1", f.Len())
	}
	if _, ok := f.Get(2); !ok {
		t.Error("item 2 lost after remove")
	}
	res := f.Search(embed.Vector{0, 0}, 10)
	if len(res) != 1 || res[0].ID != 2 {
		t.Errorf("search after remove: %+v", res)
	}
}

func TestFlatKLargerThanStore(t *testing.T) {
	f := NewFlat(2, Cosine)
	f.Add(Item{ID: 1, Vec: embed.Vector{1, 0}})
	res := f.Search(embed.Vector{1, 0}, 100)
	if len(res) != 1 {
		t.Errorf("got %d results, want 1", len(res))
	}
}

func TestFlatZeroK(t *testing.T) {
	f := NewFlat(2, Cosine)
	f.Add(Item{ID: 1, Vec: embed.Vector{1, 0}})
	if res := f.Search(embed.Vector{1, 0}, 0); len(res) != 0 {
		t.Errorf("k=0 returned %v", res)
	}
}

func TestFlatSearchSortedDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewFlat(8, L2)
	f.Add(buildItems(rng, 200, 8)...)
	q := randVec(rng, 8)
	res := f.Search(q, 20)
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatalf("results not sorted at %d: %+v", i, res)
		}
	}
}

// Property: flat search over all metrics returns the true top-k (validated
// against an O(n log n) full sort).
func TestFlatExactTopK(t *testing.T) {
	for _, m := range []Metric{Cosine, Dot, L2} {
		rng := rand.New(rand.NewSource(42))
		f := NewFlat(6, m)
		items := buildItems(rng, 150, 6)
		f.Add(items...)
		q := randVec(rng, 6)
		res := f.Search(q, 10)

		best := make([]Result, len(items))
		for i, it := range items {
			best[i] = Result{ID: it.ID, Score: m.Score(q, it.Vec)}
		}
		for i := 0; i < 10; i++ {
			top := i
			for j := i + 1; j < len(best); j++ {
				if best[j].Score > best[top].Score {
					top = j
				}
			}
			best[i], best[top] = best[top], best[i]
			if res[i].ID != best[i].ID && res[i].Score != best[i].Score {
				t.Errorf("metric %v rank %d: got %+v want %+v", m, i, res[i], best[i])
			}
		}
	}
}

func TestMetricString(t *testing.T) {
	if Cosine.String() != "cosine" || Dot.String() != "dot" || L2.String() != "l2" {
		t.Error("metric names wrong")
	}
}

func TestTopKProperty(t *testing.T) {
	f := func(scores []float64, k8 uint8) bool {
		k := int(k8%10) + 1
		t := newTopK(k)
		for i, s := range scores {
			t.offer(Result{ID: ID(i), Score: s})
		}
		res := t.results()
		if len(res) > k {
			return false
		}
		for i := 1; i < len(res); i++ {
			if res[i].Score > res[i-1].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkFlatSearch1k(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	f := NewFlat(embed.DefaultDim, Cosine)
	f.Add(buildItems(rng, 1000, embed.DefaultDim)...)
	q := randVec(rng, embed.DefaultDim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Search(q, 10)
	}
}
