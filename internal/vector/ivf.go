package vector

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/embed"
)

// IVF is an inverted-file index: vectors are partitioned into nlist cells by
// a k-means coarse quantizer, and a query probes only the nprobe nearest
// cells. It trades a little recall for large scan savings on big
// collections — the paper's multi-modal data lake scenario.
//
// Each cell is a contiguous column store (scan.go), so probing a cell runs
// the same SIMD scan kernels as the flat index; with IVFConfig.Quantized the
// cells also keep int8 codes and large-cell scans use the quantized
// prefilter with exact rescoring.
//
// IVF is safe for concurrent use. The quantizer is trained lazily on first
// search (or explicitly via Train) from the vectors added so far; later
// additions are assigned to existing cells.
type IVF struct {
	mu      sync.RWMutex
	metric  Metric
	dim     int
	nlist   int
	nprobe  int
	seed    int64
	mode    quantMode
	trained bool

	centroids []embed.Vector
	cells     []ivfCell
	byID      map[ID]struct{}
	pending   []Item // items added before training
}

// ivfCell is one inverted list: a column store plus the item ID per row.
type ivfCell struct {
	store *colStore
	ids   []ID
}

// IVFConfig parameterizes an IVF index.
type IVFConfig struct {
	Dim    int
	Metric Metric
	// NList is the number of k-means cells. Defaults to 16.
	NList int
	// NProbe is how many cells a query scans. Defaults to 4.
	NProbe int
	// Seed drives k-means initialization; fixed for reproducibility.
	Seed int64
	// Quantized maintains int8 codes in every cell from the start, so cell
	// scans use the quantized prefilter (with exact rescoring) regardless
	// of cell size.
	Quantized bool
}

// NewIVF returns an empty IVF index.
func NewIVF(cfg IVFConfig) *IVF {
	if cfg.Dim <= 0 {
		panic("vector: non-positive dimension")
	}
	if cfg.NList <= 0 {
		cfg.NList = 16
	}
	if cfg.NProbe <= 0 {
		cfg.NProbe = 4
	}
	if cfg.NProbe > cfg.NList {
		cfg.NProbe = cfg.NList
	}
	mode := quantAuto
	if cfg.Quantized {
		mode = quantOn
	}
	return &IVF{
		metric: cfg.Metric,
		dim:    cfg.Dim,
		nlist:  cfg.NList,
		nprobe: cfg.NProbe,
		seed:   cfg.Seed,
		mode:   mode,
		byID:   make(map[ID]struct{}),
	}
}

// Add implements Index.
func (x *IVF) Add(items ...Item) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	for _, it := range items {
		if len(it.Vec) != x.dim {
			return fmt.Errorf("%w: item %d has dim %d, index dim %d", ErrDimMismatch, it.ID, len(it.Vec), x.dim)
		}
		if _, ok := x.byID[it.ID]; ok {
			return fmt.Errorf("%w: %d", ErrDuplicateID, it.ID)
		}
		x.byID[it.ID] = struct{}{}
		if !x.trained {
			x.pending = append(x.pending, it)
			continue
		}
		c := x.nearestCentroidLocked(it.Vec)
		x.cells[c].store.appendRow(it.Vec)
		x.cells[c].ids = append(x.cells[c].ids, it.ID)
	}
	return nil
}

// Train runs k-means over the pending vectors and assigns them to cells.
// Searching an untrained index trains it implicitly.
func (x *IVF) Train() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.trainLocked()
}

func (x *IVF) trainLocked() {
	if x.trained {
		return
	}
	n := len(x.pending)
	k := x.nlist
	if k > n {
		k = n
	}
	if k == 0 {
		k = 1
	}
	x.centroids = kmeans(x.pending, k, x.dim, x.seed)
	x.cells = make([]ivfCell, len(x.centroids))
	for i := range x.cells {
		x.cells[i].store = newColStore(x.dim, x.mode)
	}
	for _, it := range x.pending {
		c := x.nearestCentroidLocked(it.Vec)
		x.cells[c].store.appendRow(it.Vec)
		x.cells[c].ids = append(x.cells[c].ids, it.ID)
	}
	x.pending = nil
	x.trained = true
}

// nearestCentroidLocked returns the index of the centroid closest to v by
// Euclidean distance (the standard IVF assignment regardless of the search
// metric). Squared distance ranks identically and skips the square root.
func (x *IVF) nearestCentroidLocked(v embed.Vector) int {
	best, bestD := 0, embed.SqL2(v, x.centroids[0])
	for i := 1; i < len(x.centroids); i++ {
		if d := embed.SqL2(v, x.centroids[i]); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Search implements Index.
func (x *IVF) Search(q embed.Vector, k int) []Result {
	x.mu.Lock()
	x.trainLocked()
	x.mu.Unlock()

	x.mu.RLock()
	defer x.mu.RUnlock()
	if len(x.centroids) == 0 {
		return nil
	}
	// Rank cells by centroid distance, probe the best nprobe.
	type cd struct {
		cell int
		d    float64
	}
	order := make([]cd, len(x.centroids))
	for i, c := range x.centroids {
		order[i] = cd{i, embed.SqL2(q, c)}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].d < order[j].d })
	probes := x.nprobe
	if probes > len(order) {
		probes = len(order)
	}
	t := newTopK(k)
	for _, o := range order[:probes] {
		cell := &x.cells[o.cell]
		if cell.store.n == 0 {
			continue
		}
		if len(q) != x.dim {
			// Historical per-metric semantics for mismatched queries.
			for i := 0; i < cell.store.n; i++ {
				t.offer(Result{ID: cell.ids[i], Score: x.metric.Score(q, cell.store.row(i))})
			}
			continue
		}
		ids := cell.ids
		for _, r := range cell.store.search(x.metric, q, k, func(i int) ID { return ids[i] }, nil, 0) {
			t.offer(r)
		}
	}
	return t.results()
}

// Len implements Index.
func (x *IVF) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.byID)
}

// NCells reports how many cells the trained quantizer has (0 if untrained).
func (x *IVF) NCells() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.centroids)
}

// kmeans clusters the item vectors into k centroids with Lloyd's algorithm,
// k-means++-style seeding and a fixed iteration budget.
func kmeans(items []Item, k, dim int, seed int64) []embed.Vector {
	rng := rand.New(rand.NewSource(seed))
	if len(items) == 0 {
		return []embed.Vector{make(embed.Vector, dim)}
	}
	// Seeding: first centroid uniform, the rest proportional to squared
	// distance from the nearest chosen centroid (k-means++).
	cents := make([]embed.Vector, 0, k)
	cents = append(cents, cloneVec(items[rng.Intn(len(items))].Vec))
	d2 := make([]float64, len(items))
	for len(cents) < k {
		var sum float64
		for i, it := range items {
			best := embed.SqL2(it.Vec, cents[0])
			for _, c := range cents[1:] {
				if d := embed.SqL2(it.Vec, c); d < best {
					best = d
				}
			}
			d2[i] = best
			sum += d2[i]
		}
		if sum == 0 {
			cents = append(cents, cloneVec(items[rng.Intn(len(items))].Vec))
			continue
		}
		r := rng.Float64() * sum
		pick := len(items) - 1
		for i, d := range d2 {
			r -= d
			if r <= 0 {
				pick = i
				break
			}
		}
		cents = append(cents, cloneVec(items[pick].Vec))
	}
	// Lloyd iterations.
	assign := make([]int, len(items))
	for iter := 0; iter < 25; iter++ {
		changed := false
		for i, it := range items {
			best, bestD := 0, embed.SqL2(it.Vec, cents[0])
			for c := 1; c < len(cents); c++ {
				if d := embed.SqL2(it.Vec, cents[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, len(cents))
		next := make([]embed.Vector, len(cents))
		for c := range next {
			next[c] = make(embed.Vector, dim)
		}
		for i, it := range items {
			c := assign[i]
			counts[c]++
			for j, v := range it.Vec {
				next[c][j] += v
			}
		}
		for c := range next {
			if counts[c] == 0 {
				// Re-seed empty cells from a random item.
				next[c] = cloneVec(items[rng.Intn(len(items))].Vec)
				continue
			}
			inv := float32(1 / float64(counts[c]))
			for j := range next[c] {
				next[c][j] *= inv
			}
		}
		cents = next
	}
	return cents
}

func cloneVec(v embed.Vector) embed.Vector {
	out := make(embed.Vector, len(v))
	copy(out, v)
	return out
}
