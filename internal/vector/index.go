// Package vector implements in-memory vector indexes — brute-force flat,
// IVF (inverted file with a k-means coarse quantizer) and HNSW — plus hybrid
// attribute+vector search with selectable filtering order.
//
// These are the storage and retrieval substrate for the paper's prompt store
// (Section III-A), semantic cache (Section III-C) and multi-modal data lake
// (Sections II-D, III-B2).
package vector

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"repro/internal/embed"
)

// Metric selects how similarity is scored.
type Metric int

const (
	// Cosine scores by cosine similarity (higher is closer).
	Cosine Metric = iota
	// Dot scores by inner product (higher is closer).
	Dot
	// L2 scores by negative Euclidean distance (higher is closer), so that
	// all metrics sort the same way.
	L2
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case Dot:
		return "dot"
	case L2:
		return "l2"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Score returns the similarity of a and b under m; higher is always closer.
func (m Metric) Score(a, b embed.Vector) float64 {
	switch m {
	case Cosine:
		return embed.Cosine(a, b)
	case Dot:
		return embed.Dot(a, b)
	case L2:
		return -embed.L2(a, b)
	default:
		panic("vector: unknown metric")
	}
}

// ID identifies one stored item.
type ID int64

// Item is a stored vector with optional filterable attributes.
type Item struct {
	ID    ID
	Vec   embed.Vector
	Attrs map[string]string
}

// Result is one search hit.
type Result struct {
	ID    ID
	Score float64
}

// Index is the common contract of all vector indexes in this package.
type Index interface {
	// Add inserts items. Adding an ID that already exists is an error.
	Add(items ...Item) error
	// Search returns up to k nearest items to q, best first.
	Search(q embed.Vector, k int) []Result
	// Len reports the number of stored items.
	Len() int
}

// ErrDuplicateID is returned when an item with an existing ID is added.
var ErrDuplicateID = errors.New("vector: duplicate item ID")

// ErrDimMismatch is returned when a vector's length does not match the index.
var ErrDimMismatch = errors.New("vector: dimension mismatch")

// resultHeap is a min-heap on Score used to keep the best k results.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// topK maintains the best k results seen so far.
type topK struct {
	k int
	h resultHeap
}

func newTopK(k int) *topK { return &topK{k: k} }

func (t *topK) offer(r Result) {
	if t.k <= 0 {
		return
	}
	if len(t.h) < t.k {
		heap.Push(&t.h, r)
		return
	}
	if r.Score > t.h[0].Score || (r.Score == t.h[0].Score && r.ID < t.h[0].ID) {
		t.h[0] = r
		heap.Fix(&t.h, 0)
	}
}

// results returns the collected hits, best first, with deterministic
// tie-breaking on ID.
func (t *topK) results() []Result {
	out := make([]Result, len(t.h))
	copy(out, t.h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}
