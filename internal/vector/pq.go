package vector

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/embed"
)

// PQ is a product-quantization index: vectors are split into M sub-vectors,
// each quantized to one of K centroids learned by k-means, so a vector is
// stored as M bytes instead of dim float32s. Queries score against
// per-sub-space lookup tables (asymmetric distance computation). This is
// the memory-compressed regime production vector stores run large
// collections in — the paper's multi-modal data lake at scale.
//
// PQ is safe for concurrent use. Like IVF, it trains lazily on first
// search from the vectors added so far.
type PQ struct {
	mu      sync.RWMutex
	dim     int
	m       int // sub-quantizers
	k       int // centroids per sub-quantizer
	seed    int64
	trained bool

	subDim    int
	codebooks [][]embed.Vector // [m][k] sub-centroids
	codes     []byte           // flattened: m bytes per item, contiguous
	ids       []ID
	byID      map[ID]struct{}
	pending   []Item
}

// PQConfig parameterizes a PQ index.
type PQConfig struct {
	Dim int
	// M is the number of sub-quantizers; must divide Dim. Defaults to 8.
	M int
	// K is the number of centroids per sub-space (max 256). Defaults to 32.
	K    int
	Seed int64
}

// NewPQ returns an empty PQ index over L2 distance.
func NewPQ(cfg PQConfig) *PQ {
	if cfg.Dim <= 0 {
		panic("vector: non-positive dimension")
	}
	if cfg.M <= 0 {
		cfg.M = 8
	}
	if cfg.Dim%cfg.M != 0 {
		panic(fmt.Sprintf("vector: M=%d does not divide dim=%d", cfg.M, cfg.Dim))
	}
	if cfg.K <= 0 {
		cfg.K = 32
	}
	if cfg.K > 256 {
		cfg.K = 256
	}
	return &PQ{
		dim:    cfg.Dim,
		m:      cfg.M,
		k:      cfg.K,
		seed:   cfg.Seed,
		subDim: cfg.Dim / cfg.M,
		byID:   make(map[ID]struct{}),
	}
}

// Add implements Index.
func (p *PQ) Add(items ...Item) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, it := range items {
		if len(it.Vec) != p.dim {
			return fmt.Errorf("%w: item %d has dim %d, index dim %d", ErrDimMismatch, it.ID, len(it.Vec), p.dim)
		}
		if _, ok := p.byID[it.ID]; ok {
			return fmt.Errorf("%w: %d", ErrDuplicateID, it.ID)
		}
		p.byID[it.ID] = struct{}{}
		if !p.trained {
			p.pending = append(p.pending, it)
			continue
		}
		p.codes = p.appendCodeLocked(p.codes, it.Vec)
		p.ids = append(p.ids, it.ID)
	}
	return nil
}

// Train fits the sub-space codebooks and encodes pending vectors.
func (p *PQ) Train() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.trainLocked()
}

func (p *PQ) trainLocked() {
	if p.trained {
		return
	}
	p.codebooks = make([][]embed.Vector, p.m)
	for s := 0; s < p.m; s++ {
		// Build the sub-vector training set for sub-space s.
		subItems := make([]Item, len(p.pending))
		for i, it := range p.pending {
			subItems[i] = Item{ID: ID(i), Vec: it.Vec[s*p.subDim : (s+1)*p.subDim]}
		}
		k := p.k
		if k > len(subItems) {
			k = len(subItems)
		}
		if k == 0 {
			k = 1
		}
		p.codebooks[s] = kmeans(subItems, k, p.subDim, p.seed+int64(s))
	}
	for _, it := range p.pending {
		p.codes = p.appendCodeLocked(p.codes, it.Vec)
		p.ids = append(p.ids, it.ID)
	}
	p.pending = nil
	p.trained = true
}

// appendCodeLocked appends v's m-byte code to dst. Codes live flattened in
// one contiguous array so the scan in Search walks a single allocation.
func (p *PQ) appendCodeLocked(dst []byte, v embed.Vector) []byte {
	for s := 0; s < p.m; s++ {
		sub := v[s*p.subDim : (s+1)*p.subDim]
		best, bestD := 0, math.Inf(1)
		for c, cent := range p.codebooks[s] {
			d := embed.SqL2(sub, cent)
			if d < bestD {
				best, bestD = c, d
			}
		}
		dst = append(dst, byte(best))
	}
	return dst
}

// Search implements Index. Scores are negative approximate L2 distances
// (higher is closer), matching the L2 metric convention.
func (p *PQ) Search(q embed.Vector, k int) []Result {
	p.mu.Lock()
	p.trainLocked()
	p.mu.Unlock()

	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.codes) == 0 || k <= 0 {
		return nil
	}
	// Asymmetric distance tables: distance from each query sub-vector to
	// every sub-centroid, computed once.
	tables := make([][]float64, p.m)
	for s := 0; s < p.m; s++ {
		sub := q[s*p.subDim : (s+1)*p.subDim]
		tables[s] = make([]float64, len(p.codebooks[s]))
		for c, cent := range p.codebooks[s] {
			tables[s][c] = embed.SqL2(sub, cent)
		}
	}
	t := newTopK(k)
	for i := range p.ids {
		code := p.codes[i*p.m : (i+1)*p.m]
		var d float64
		for s := 0; s < p.m; s++ {
			d += tables[s][code[s]]
		}
		t.offer(Result{ID: p.ids[i], Score: -math.Sqrt(d)})
	}
	return t.results()
}

// Len implements Index.
func (p *PQ) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.byID)
}

// BytesPerVector reports the compressed storage per vector (codes only).
func (p *PQ) BytesPerVector() int { return p.m }

// CompressionRatio reports raw float32 storage over code storage.
func (p *PQ) CompressionRatio() float64 {
	return float64(p.dim*4) / float64(p.m)
}
