package vector

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/embed"
	"repro/internal/obs"
)

// Scan kernel layer: a contiguous column store plus the exact and
// int8-quantized scoring loops shared by the flat and IVF indexes.
//
// Storing vectors row-major in one []float32 (instead of one heap object
// per item) keeps scans sequential in memory, lets the embed package's
// SIMD kernels run without per-item slice-header chasing, and makes the
// optional int8 code array a parallel column rather than a second index.
// See DESIGN.md "Kernel architecture".

const (
	// quantAutoMin is the collection size at which a store in auto mode
	// starts maintaining int8 codes. The int8 kernel's arithmetic rate is
	// close to the AVX2 float kernel's, so the prefilter only wins once
	// the float rows outgrow the last-level cache and the scan turns
	// memory-bound — there the 4x-smaller codes are a 4x bandwidth cut.
	// 16k rows at the default 128 dims is 8 MB of float32, around where
	// that transition starts; smaller stores (and every exact-accuracy
	// test) scan exactly. Quantized() forces codes on regardless of size.
	quantAutoMin = 16384

	// flatParallelMin is the default collection size at which an
	// unfiltered flat scan shards across goroutines. Sharding a scan that
	// takes tens of microseconds costs more in handoff than it saves, so
	// the default is deliberately high; ParallelMin tunes it per index.
	flatParallelMin = 4096

	// minShard is the smallest number of rows worth giving one worker.
	minShard = 512

	// maxScanWorkers bounds scan fan-out regardless of GOMAXPROCS so one
	// search cannot monopolize a large machine.
	maxScanWorkers = 8
)

// shortlistFor is the quantized-prefilter shortlist size: wide enough that
// int8 ranking error (see embed.QuantizeInto) essentially never evicts a
// true top-k hit, small enough that exact rescoring stays negligible.
func shortlistFor(k int) int { return k*4 + 16 }

// quantMode selects how a colStore decides to maintain int8 codes.
type quantMode int

const (
	quantAuto quantMode = iota // quantize once the store reaches quantAutoMin
	quantOff                   // never quantize
	quantOn                    // quantize from the first row
)

// colStore is a row-major contiguous vector store with cached norms and
// optional int8 codes. It has no lock of its own: the owning index
// serializes mutation.
type colStore struct {
	dim      int
	n        int
	vecs     []float32 // n*dim, row-major
	norms    []float32 // n, L2 norm of each row
	invNorms []float32 // n, 1/norm (0 for zero rows): scans multiply, never divide
	mode     quantMode
	quant    bool // int8 codes are live
	codes    []int8
	scales   []float32
}

func newColStore(dim int, mode quantMode) *colStore {
	return &colStore{dim: dim, mode: mode}
}

func (s *colStore) row(i int) embed.Vector {
	return embed.Vector(s.vecs[i*s.dim : (i+1)*s.dim : (i+1)*s.dim])
}

func (s *colStore) code(i int) []int8 {
	return s.codes[i*s.dim : (i+1)*s.dim : (i+1)*s.dim]
}

// appendRow copies v into the store (the caller keeps ownership of v).
func (s *colStore) appendRow(v embed.Vector) {
	s.vecs = append(s.vecs, v...)
	n := embed.Norm(v)
	s.norms = append(s.norms, float32(n))
	if n == 0 {
		s.invNorms = append(s.invNorms, 0)
	} else {
		s.invNorms = append(s.invNorms, float32(1/n))
	}
	s.n++
	if s.quant {
		s.codes = append(s.codes, make([]int8, s.dim)...)
		s.scales = append(s.scales, embed.QuantizeInto(s.code(s.n-1), v))
	} else if s.mode == quantOn || (s.mode == quantAuto && s.n >= quantAutoMin) {
		s.enableQuant()
	}
}

// enableQuant materializes int8 codes for every stored row.
func (s *colStore) enableQuant() {
	s.quant = true
	s.codes = make([]int8, s.n*s.dim)
	s.scales = make([]float32, s.n)
	for i := 0; i < s.n; i++ {
		s.scales[i] = embed.QuantizeInto(s.code(i), s.row(i))
	}
}

// swapRemove removes row i by moving the last row into its place,
// mirroring the swap-remove the owning index performs on its own arrays.
func (s *colStore) swapRemove(i int) {
	last := s.n - 1
	if i != last {
		copy(s.row(i), s.row(last))
		s.norms[i] = s.norms[last]
		s.invNorms[i] = s.invNorms[last]
		if s.quant {
			copy(s.code(i), s.code(last))
			s.scales[i] = s.scales[last]
		}
	}
	s.vecs = s.vecs[:last*s.dim]
	s.norms = s.norms[:last]
	s.invNorms = s.invNorms[:last]
	if s.quant {
		s.codes = s.codes[:last*s.dim]
		s.scales = s.scales[:last]
	}
	s.n = last
}

// preparedQuery hoists the per-query work (norm, squared norm, int8 code)
// out of the per-row loop.
type preparedQuery struct {
	metric Metric
	q      embed.Vector
	qsq    float64 // q·q
	qnorm  float64 // sqrt(qsq)
	qinv   float64 // 1/qnorm (0 for the zero query)
	qcode  []int8
	qscale float32
}

func (s *colStore) prepare(m Metric, q embed.Vector) preparedQuery {
	p := preparedQuery{metric: m, q: q, qsq: embed.Dot(q, q)}
	p.qnorm = math.Sqrt(p.qsq)
	if p.qnorm != 0 {
		p.qinv = 1 / p.qnorm
	}
	if s.quant {
		p.qcode = make([]int8, s.dim)
		p.qscale = embed.QuantizeInto(p.qcode, q)
	}
	return p
}

// scoreExact scores row i exactly under p's metric (higher is closer),
// using the cached reciprocal norm so cosine is one dot product and two
// multiplies — no per-row division, no recomputed norms.
func (s *colStore) scoreExact(p *preparedQuery, i int) float64 {
	switch p.metric {
	case Cosine:
		return embed.Dot(p.q, s.row(i)) * float64(s.invNorms[i]) * p.qinv
	case Dot:
		return embed.Dot(p.q, s.row(i))
	default: // L2
		return -math.Sqrt(embed.SqL2(p.q, s.row(i)))
	}
}

// scoreApprox ranks row i from its int8 code. The value is monotone in the
// exact score per metric but carries quantization error, so it is only
// ever used to build a shortlist that is rescored exactly.
func (s *colStore) scoreApprox(p *preparedQuery, i int) float64 {
	d := float64(embed.DotInt8(p.qcode, s.code(i))) * float64(p.qscale) * float64(s.scales[i])
	switch p.metric {
	case Cosine:
		return d * float64(s.invNorms[i]) * p.qinv
	case Dot:
		return d
	default: // L2: rank by -||q-x||^2 = 2(q·x) - q·q - x·x
		n := float64(s.norms[i])
		return 2*d - p.qsq - n*n
	}
}

// search scans the store for the top k rows under m. id maps a row index
// to the caller's item ID (scores and tie-breaks are reported in ID
// space); keep, when non-nil, admits a row. parallelMin <= 0 disables
// sharding. Returned results carry exact scores even when the quantized
// prefilter ran.
func (s *colStore) search(m Metric, q embed.Vector, k int, id func(int) ID, keep func(int) bool, parallelMin int) []Result {
	t := newTopK(k)
	if k <= 0 || s.n == 0 {
		return t.results()
	}
	p := s.prepare(m, q)
	if s.quant && s.n > 4*shortlistFor(k) {
		// Quantized prefilter: rank every row by int8 score, keep a
		// generous shortlist (tie-broken by row index), then rescore the
		// shortlist exactly so callers only ever observe exact scores.
		short := newTopK(shortlistFor(k))
		s.scan(short, &p, s.scoreApprox, rowAsID, keep, parallelMin)
		for _, r := range short.h {
			i := int(r.ID)
			t.offer(Result{ID: id(i), Score: s.scoreExact(&p, i)})
		}
		return t.results()
	}
	s.scan(t, &p, s.scoreExact, id, keep, parallelMin)
	return t.results()
}

// rowAsID is the identity row-index-to-ID mapping used by prefilter scans.
func rowAsID(i int) ID { return ID(i) }

// scan runs score over every row, offering hits into t. Unfiltered scans
// over at least parallelMin rows shard across up to maxScanWorkers
// goroutines; each worker fills a private topK and the shards are merged
// in deterministic shard order, so results match the serial scan exactly
// (topK tie-breaking is order-insensitive).
func (s *colStore) scan(t *topK, p *preparedQuery, score func(*preparedQuery, int) float64, id func(int) ID, keep func(int) bool, parallelMin int) {
	workers := 1
	if keep == nil && parallelMin > 0 && s.n >= parallelMin {
		workers = runtime.GOMAXPROCS(0)
		if m := s.n / minShard; workers > m {
			workers = m
		}
		if workers > maxScanWorkers {
			workers = maxScanWorkers
		}
	}
	if workers <= 1 {
		for i := 0; i < s.n; i++ {
			if keep != nil && !keep(i) {
				continue
			}
			t.offer(Result{ID: id(i), Score: score(p, i)})
		}
		return
	}
	parts := make([]*topK, workers)
	chunk := (s.n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, s.n)
		part := newTopK(t.k)
		parts[w] = part
		wg.Add(1)
		obs.Go(nil, "vector.scan_shard", func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				part.offer(Result{ID: id(i), Score: score(p, i)})
			}
		})
	}
	// Shard workers read immutable rows and private heaps only; they can
	// never take index locks, so joining them while the caller holds the
	// index read lock cannot deadlock.
	wg.Wait()
	for _, part := range parts {
		for _, r := range part.h {
			t.offer(r)
		}
	}
}
