package vector

import (
	"sync"

	"repro/internal/embed"
)

// FilterOrder selects how a hybrid (vector + attribute) query is executed —
// the Section III-B2 design space.
type FilterOrder int

const (
	// AttributeFirst scans items passing the attribute predicate and ranks
	// only those by vector similarity. Best when the predicate is selective.
	AttributeFirst FilterOrder = iota
	// VectorFirst runs the vector search with an inflated k and discards
	// hits failing the predicate. Best when the predicate is permissive.
	VectorFirst
	// Adaptive estimates predicate selectivity from a sample and picks
	// AttributeFirst when few candidates would survive, VectorFirst
	// otherwise. This is the paper's envisioned learned order selection.
	Adaptive
)

// String implements fmt.Stringer.
func (o FilterOrder) String() string {
	switch o {
	case AttributeFirst:
		return "attribute-first"
	case VectorFirst:
		return "vector-first"
	case Adaptive:
		return "adaptive"
	default:
		return "unknown"
	}
}

// Predicate filters items by attribute map.
type Predicate func(attrs map[string]string) bool

// AttrEquals returns a Predicate matching items whose attribute key equals
// value.
func AttrEquals(key, value string) Predicate {
	return func(attrs map[string]string) bool { return attrs[key] == value }
}

// And combines predicates conjunctively.
func And(ps ...Predicate) Predicate {
	return func(attrs map[string]string) bool {
		for _, p := range ps {
			if !p(attrs) {
				return false
			}
		}
		return true
	}
}

// HybridStats reports what a hybrid query did, for benchmarks and for the
// adaptive-k learner.
type HybridStats struct {
	Order          FilterOrder // order actually used
	Scanned        int         // vectors scored
	InflatedK      int         // k used for the vector phase (VectorFirst)
	Survivors      int         // hits passing the predicate
	SelectivityEst float64     // estimated fraction passing (Adaptive only)
}

// Hybrid executes attribute-filtered vector search over a Flat store with a
// configurable execution order and a learned k-inflation factor.
// Hybrid is safe for concurrent use.
type Hybrid struct {
	store *Flat

	mu sync.Mutex
	// inflate is the multiplier applied to k in VectorFirst mode. It is
	// adapted from observed survivor rates: if too few hits survive the
	// predicate, inflate grows; if nearly all survive, it decays. This is
	// the "predict an appropriate k" mechanism from Section III-B2.
	inflate float64
	// sampleSize bounds the selectivity estimation sample in Adaptive mode.
	sampleSize int
	// threshold is the selectivity below which Adaptive picks AttributeFirst.
	threshold float64
}

// NewHybrid wraps a Flat store for hybrid querying.
func NewHybrid(store *Flat) *Hybrid {
	return &Hybrid{store: store, inflate: 2, sampleSize: 64, threshold: 0.25}
}

// InflationFactor reports the current learned k multiplier.
func (h *Hybrid) InflationFactor() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.inflate
}

// Search runs a hybrid query. order chooses the execution strategy; pred may
// be nil for a pure vector query.
func (h *Hybrid) Search(q embed.Vector, k int, pred Predicate, order FilterOrder) ([]Result, HybridStats) {
	if pred == nil {
		res := h.store.Search(q, k)
		return res, HybridStats{Order: order, Scanned: h.store.Len(), Survivors: len(res)}
	}
	switch order {
	case AttributeFirst:
		return h.attributeFirst(q, k, pred)
	case VectorFirst:
		return h.vectorFirst(q, k, pred)
	case Adaptive:
		sel := h.estimateSelectivity(pred)
		var res []Result
		var st HybridStats
		if sel < h.threshold {
			res, st = h.attributeFirst(q, k, pred)
		} else {
			res, st = h.vectorFirst(q, k, pred)
		}
		st.SelectivityEst = sel
		return res, st
	default:
		return h.attributeFirst(q, k, pred)
	}
}

func (h *Hybrid) attributeFirst(q embed.Vector, k int, pred Predicate) ([]Result, HybridStats) {
	items := h.store.Items()
	t := newTopK(k)
	scanned := 0
	for _, it := range items {
		if !pred(it.Attrs) {
			continue
		}
		scanned++
		t.offer(Result{ID: it.ID, Score: h.store.metric.Score(q, it.Vec)})
	}
	res := t.results()
	return res, HybridStats{Order: AttributeFirst, Scanned: scanned, Survivors: len(res)}
}

func (h *Hybrid) vectorFirst(q embed.Vector, k int, pred Predicate) ([]Result, HybridStats) {
	h.mu.Lock()
	inflate := h.inflate
	h.mu.Unlock()

	n := h.store.Len()
	kk := int(float64(k)*inflate) + 1
	if kk > n {
		kk = n
	}
	var out []Result
	for {
		hits := h.store.Search(q, kk)
		out = out[:0]
		for _, r := range hits {
			it, _ := h.store.Get(r.ID)
			if pred(it.Attrs) {
				out = append(out, r)
				if len(out) == k {
					break
				}
			}
		}
		if len(out) >= k || kk >= n {
			h.adapt(len(hits), len(out), k)
			return out, HybridStats{Order: VectorFirst, Scanned: kk, InflatedK: kk, Survivors: len(out)}
		}
		// Not enough survivors: widen and retry (paper: "k is often set as a
		// large number", here grown on demand and remembered via adapt).
		kk *= 2
		if kk > n {
			kk = n
		}
	}
}

// adapt updates the learned inflation factor from the observed survivor rate.
func (h *Hybrid) adapt(fetched, survived, want int) {
	if fetched == 0 {
		return
	}
	rate := float64(survived) / float64(fetched)
	var target float64
	if rate <= 0 {
		target = 16
	} else {
		target = 1/rate + 0.5
	}
	if target > 16 {
		target = 16
	}
	if target < 1 {
		target = 1
	}
	h.mu.Lock()
	h.inflate = 0.7*h.inflate + 0.3*target
	h.mu.Unlock()
	_ = want
}

// estimateSelectivity samples stored items and returns the fraction passing
// pred.
func (h *Hybrid) estimateSelectivity(pred Predicate) float64 {
	items := h.store.Items()
	if len(items) == 0 {
		return 1
	}
	step := 1
	if len(items) > h.sampleSize {
		step = len(items) / h.sampleSize
	}
	seen, pass := 0, 0
	for i := 0; i < len(items); i += step {
		seen++
		if pred(items[i].Attrs) {
			pass++
		}
	}
	return float64(pass) / float64(seen)
}
