package vector

import (
	"math/rand"
	"testing"
)

func TestPQRecallAgainstFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	const n, dim, k = 500, 32, 10
	items := buildItems(rng, n, dim)

	flat := NewFlat(dim, L2)
	flat.Add(items...)
	pq := NewPQ(PQConfig{Dim: dim, M: 8, K: 64, Seed: 1})
	pq.Add(items...)
	pq.Train()

	hits, total := 0, 0
	for qi := 0; qi < 30; qi++ {
		q := randVec(rng, dim)
		truth := flat.Search(q, k)
		approx := pq.Search(q, k)
		in := make(map[ID]bool, len(approx))
		for _, r := range approx {
			in[r.ID] = true
		}
		for _, r := range truth {
			total++
			if in[r.ID] {
				hits++
			}
		}
	}
	recall := float64(hits) / float64(total)
	if recall < 0.5 {
		t.Errorf("PQ recall@%d = %.2f, want >= 0.5 (lossy but not useless)", k, recall)
	}
}

func TestPQSelfQueryNearTop(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	items := buildItems(rng, 200, 16)
	pq := NewPQ(PQConfig{Dim: 16, M: 4, K: 64, Seed: 2})
	pq.Add(items...)
	found := 0
	for i := 0; i < 20; i++ {
		it := items[rng.Intn(len(items))]
		res := pq.Search(it.Vec, 5)
		for _, r := range res {
			if r.ID == it.ID {
				found++
				break
			}
		}
	}
	if found < 15 {
		t.Errorf("self queries found in top-5 only %d/20 times", found)
	}
}

func TestPQCompression(t *testing.T) {
	pq := NewPQ(PQConfig{Dim: 128, M: 8, K: 32})
	if pq.BytesPerVector() != 8 {
		t.Errorf("bytes per vector = %d", pq.BytesPerVector())
	}
	if pq.CompressionRatio() != 64 {
		t.Errorf("compression = %v, want 64x", pq.CompressionRatio())
	}
}

func TestPQLateAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	pq := NewPQ(PQConfig{Dim: 8, M: 4, K: 16, Seed: 3})
	pq.Add(buildItems(rng, 100, 8)...)
	pq.Train()
	late := Item{ID: 999, Vec: randVec(rng, 8)}
	if err := pq.Add(late); err != nil {
		t.Fatal(err)
	}
	res := pq.Search(late.Vec, 3)
	found := false
	for _, r := range res {
		if r.ID == 999 {
			found = true
		}
	}
	if !found {
		t.Error("late add not retrievable")
	}
	if pq.Len() != 101 {
		t.Errorf("len = %d", pq.Len())
	}
}

func TestPQErrors(t *testing.T) {
	pq := NewPQ(PQConfig{Dim: 8, M: 4})
	if err := pq.Add(Item{ID: 1, Vec: make([]float32, 4)}); err == nil {
		t.Error("dim mismatch accepted")
	}
	pq.Add(Item{ID: 1, Vec: make([]float32, 8)})
	if err := pq.Add(Item{ID: 1, Vec: make([]float32, 8)}); err == nil {
		t.Error("duplicate accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad M did not panic")
		}
	}()
	NewPQ(PQConfig{Dim: 10, M: 3})
}

func TestPQEmpty(t *testing.T) {
	pq := NewPQ(PQConfig{Dim: 8, M: 4})
	if res := pq.Search(make([]float32, 8), 5); len(res) != 0 {
		t.Errorf("empty search = %v", res)
	}
}

func BenchmarkPQSearch1k(b *testing.B) {
	rng := rand.New(rand.NewSource(107))
	pq := NewPQ(PQConfig{Dim: 64, M: 8, K: 64, Seed: 1})
	pq.Add(buildItems(rng, 1000, 64)...)
	pq.Train()
	q := randVec(rng, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pq.Search(q, 10)
	}
}
