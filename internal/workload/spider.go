package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/sqlkit"
)

// QueryClass labels NL2SQL query complexity.
type QueryClass int

const (
	// Simple queries have one atomic condition.
	Simple QueryClass = iota
	// Compound queries connect two atomic conditions with or/and/but-not —
	// the paper's Q1/Q4/Q5 shapes, which map to set operations.
	Compound
	// Superlative queries ask for "the most number of ..." — the paper's
	// Q2/Q3 shapes.
	Superlative
)

// String implements fmt.Stringer.
func (c QueryClass) String() string {
	switch c {
	case Simple:
		return "simple"
	case Compound:
		return "compound"
	case Superlative:
		return "superlative"
	default:
		return "unknown"
	}
}

// Connective joins two atomic conditions in a compound question.
type Connective int

const (
	ConnNone Connective = iota
	ConnOr              // -> UNION
	ConnAnd             // -> INTERSECT
	ConnNot             // "but did not" -> EXCEPT
)

// Atom is one atomic condition on stadiums.
type Atom struct {
	// Kind is "event", "most", or "capacity".
	Kind string
	// Event is "concerts" or "sports meetings" for event/most kinds.
	Event string
	Year  int
	// CapOp is ">" or "<" and CapN the bound, for capacity kind.
	CapOp string
	CapN  int
}

// Phrase renders the atom as the verb phrase used inside questions.
func (a Atom) Phrase() string {
	switch a.Kind {
	case "event":
		return fmt.Sprintf("had %s in %d", a.Event, a.Year)
	case "most":
		return fmt.Sprintf("had the most number of %s in %d", a.Event, a.Year)
	case "capacity":
		word := "greater"
		if a.CapOp == "<" {
			word = "smaller"
		}
		return fmt.Sprintf("have a capacity %s than %d", word, a.CapN)
	default:
		return "?"
	}
}

// SQL renders the gold SQL answering "names of stadiums that <atom>".
func (a Atom) SQL() string {
	table := "concert"
	if a.Event == "sports meetings" {
		table = "sports_meeting"
	}
	switch a.Kind {
	case "event":
		return fmt.Sprintf("SELECT DISTINCT s.name FROM stadium AS s JOIN %s AS e ON s.stadium_id = e.stadium_id WHERE e.year = %d", table, a.Year)
	case "most":
		return fmt.Sprintf("SELECT s.name FROM stadium AS s JOIN %s AS e ON s.stadium_id = e.stadium_id WHERE e.year = %d GROUP BY s.name ORDER BY COUNT(*) DESC, s.name ASC LIMIT 1", table, a.Year)
	case "capacity":
		return fmt.Sprintf("SELECT name FROM stadium WHERE capacity %s %d", a.CapOp, a.CapN)
	default:
		return ""
	}
}

// NLQuery is one NL2SQL benchmark item.
type NLQuery struct {
	ID      int
	Text    string
	GoldSQL string
	Class   QueryClass
	Conn    Connective
	Atoms   []Atom
}

// ConcertDB builds the concert/stadium database the Spider-style questions
// run against.
func ConcertDB(seed int64) *sqlkit.DB {
	rng := rand.New(rand.NewSource(seed))
	db := sqlkit.NewDB()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(db.CreateTable("stadium", []sqlkit.Column{
		{Name: "stadium_id", Type: sqlkit.TInt},
		{Name: "name", Type: sqlkit.TText},
		{Name: "city", Type: sqlkit.TText},
		{Name: "capacity", Type: sqlkit.TInt},
	}))
	must(db.CreateTable("concert", []sqlkit.Column{
		{Name: "concert_id", Type: sqlkit.TInt},
		{Name: "stadium_id", Type: sqlkit.TInt},
		{Name: "year", Type: sqlkit.TInt},
		{Name: "attendance", Type: sqlkit.TInt},
	}))
	must(db.CreateTable("sports_meeting", []sqlkit.Column{
		{Name: "meeting_id", Type: sqlkit.TInt},
		{Name: "stadium_id", Type: sqlkit.TInt},
		{Name: "year", Type: sqlkit.TInt},
	}))

	nStadiums := 18
	for i := 0; i < nStadiums; i++ {
		name := fmt.Sprintf("%s Arena", cityNames[i%len(cityNames)])
		must(db.InsertRow("stadium", []sqlkit.Value{
			sqlkit.IntVal(int64(i + 1)),
			sqlkit.StringVal(name),
			sqlkit.StringVal(cityNames[i%len(cityNames)]),
			sqlkit.IntVal(int64(20000 + rng.Intn(17)*5000)),
		}))
	}
	cid, mid := 1, 1
	for year := 2010; year <= 2019; year++ {
		for i := 0; i < nStadiums; i++ {
			for ev := 0; ev < rng.Intn(3); ev++ {
				must(db.InsertRow("concert", []sqlkit.Value{
					sqlkit.IntVal(int64(cid)),
					sqlkit.IntVal(int64(i + 1)),
					sqlkit.IntVal(int64(year)),
					sqlkit.IntVal(int64(5000 + rng.Intn(60000))),
				}))
				cid++
			}
			if rng.Float64() < 0.35 {
				must(db.InsertRow("sports_meeting", []sqlkit.Value{
					sqlkit.IntVal(int64(mid)),
					sqlkit.IntVal(int64(i + 1)),
					sqlkit.IntVal(int64(year)),
				}))
				mid++
			}
		}
	}
	return db
}

// GenNL2SQL generates n NL2SQL items. The mix is biased toward compound
// questions (the shape Table II's decomposition experiment targets) with a
// deliberately small atom vocabulary so that distinct questions share
// sub-queries, as in the paper's Figure 7 example.
func GenNL2SQL(seed int64, n int) []NLQuery {
	rng := rand.New(rand.NewSource(seed))
	years := []int{2012, 2013, 2014, 2015, 2016, 2017}
	events := []string{"concerts", "sports meetings"}
	caps := []int{30000, 40000, 50000, 60000, 70000, 80000}

	randomAtom := func() Atom {
		switch rng.Intn(5) {
		case 0:
			return Atom{Kind: "capacity", CapOp: pick(rng, []string{">", "<"}), CapN: caps[rng.Intn(len(caps))]}
		case 1:
			return Atom{Kind: "most", Event: events[rng.Intn(len(events))], Year: years[rng.Intn(len(years))]}
		default:
			return Atom{Kind: "event", Event: events[rng.Intn(len(events))], Year: years[rng.Intn(len(years))]}
		}
	}

	var out []NLQuery
	for i := 0; i < n; i++ {
		var q NLQuery
		q.ID = i
		head := pick(rng, []string{"What are the names of stadiums that", "Show the names of stadiums that"})
		switch {
		case i%5 < 3: // 60% compound
			a, b := randomAtom(), randomAtom()
			for b.Phrase() == a.Phrase() {
				b = randomAtom()
			}
			conn := Connective(1 + rng.Intn(3))
			q.Class = Compound
			q.Conn = conn
			q.Atoms = []Atom{a, b}
			switch conn {
			case ConnOr:
				q.Text = fmt.Sprintf("%s %s or %s?", head, a.Phrase(), b.Phrase())
				q.GoldSQL = a.SQL() + " UNION " + b.SQL()
			case ConnAnd:
				q.Text = fmt.Sprintf("%s %s and %s?", head, a.Phrase(), b.Phrase())
				q.GoldSQL = a.SQL() + " INTERSECT " + b.SQL()
			case ConnNot:
				q.Text = fmt.Sprintf("%s %s but did not %s?", head, a.Phrase(), negatedPhrase(b))
				q.GoldSQL = a.SQL() + " EXCEPT " + b.SQL()
			}
		case i%5 == 3: // 20% superlative
			a := Atom{Kind: "most", Event: events[rng.Intn(len(events))], Year: years[rng.Intn(len(years))]}
			q.Class = Superlative
			q.Atoms = []Atom{a}
			q.Text = fmt.Sprintf("%s %s?", head, a.Phrase())
			q.GoldSQL = a.SQL()
		default: // 20% simple
			a := randomAtom()
			for a.Kind == "most" {
				a = randomAtom()
			}
			q.Class = Simple
			q.Atoms = []Atom{a}
			q.Text = fmt.Sprintf("%s %s?", head, a.Phrase())
			q.GoldSQL = a.SQL()
		}
		out = append(out, q)
	}
	return out
}

// negatedPhrase renders the atom as it appears after "but did not".
func negatedPhrase(a Atom) string {
	switch a.Kind {
	case "event":
		return fmt.Sprintf("have %s in %d", a.Event, a.Year)
	case "most":
		return fmt.Sprintf("have the most number of %s in %d", a.Event, a.Year)
	case "capacity":
		word := "greater"
		if a.CapOp == "<" {
			word = "smaller"
		}
		return fmt.Sprintf("have a capacity %s than %d", word, a.CapN)
	default:
		return "?"
	}
}

func pick(rng *rand.Rand, opts []string) string { return opts[rng.Intn(len(opts))] }
