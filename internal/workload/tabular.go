package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Row is a generic string-keyed record used by the transformation and
// integration workloads before data reaches the relational engine.
type Row map[string]string

// TabularSet is a generated tabular dataset with controlled quality defects:
// missing values, inconsistent date formats and near-duplicate entities.
// It exercises data cleaning, entity resolution and missing-field imputation
// (paper Sections II-A2, II-B3, II-C1).
type TabularSet struct {
	Cols []string
	Rows []Row
	// DuplicatePairs lists index pairs (i, j) that refer to the same
	// real-world entity (gold labels for entity resolution).
	DuplicatePairs [][2]int
	// MissingCells lists (row, col) cells blanked out, with the gold value
	// retained for imputation grading.
	MissingCells []MissingCell
}

// MissingCell records one blanked cell and its gold value.
type MissingCell struct {
	Row  int
	Col  string
	Gold string
}

// dateFormats are the clashing representations of the same day the paper's
// column-transformation example uses ("Aug 14 2023" vs "8/14/2023").
var months = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}

// FormatDateWords renders a date like "Aug 14 2023".
func FormatDateWords(y, m, d int) string {
	return fmt.Sprintf("%s %02d %d", months[m-1], d, y)
}

// FormatDateSlash renders a date like "8/14/2023".
func FormatDateSlash(y, m, d int) string {
	return fmt.Sprintf("%d/%d/%d", m, d, y)
}

// FormatDateISO renders a date like "2023-08-14".
func FormatDateISO(y, m, d int) string {
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// GenCustomers generates a customer table with injected defects.
// missingRate blanks that fraction of non-key cells; dupRate appends that
// fraction of rows again as noisy near-duplicates.
func GenCustomers(seed int64, n int, missingRate, dupRate float64) *TabularSet {
	rng := rand.New(rand.NewSource(seed))
	set := &TabularSet{Cols: []string{"customer_id", "name", "city", "country", "signup_date", "segment"}}
	segments := []string{"retail", "enterprise", "smb"}
	kb := GenKB(seed + 7)

	// Distinct base names: rows referring to the same real-world entity are
	// exactly the injected duplicate pairs, so entity-resolution gold labels
	// are unambiguous.
	usedNames := map[string]bool{}
	freshName := func() string {
		for {
			name := firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
			if !usedNames[name] {
				usedNames[name] = true
				return name
			}
			if len(usedNames) >= len(firstNames)*len(lastNames) {
				name = fmt.Sprintf("%s %d", name, len(usedNames))
				usedNames[name] = true
				return name
			}
		}
	}

	for i := 0; i < n; i++ {
		c := kb.Cities[rng.Intn(len(kb.Cities))]
		y, m, d := 2015+rng.Intn(9), 1+rng.Intn(12), 1+rng.Intn(28)
		set.Rows = append(set.Rows, Row{
			"customer_id": fmt.Sprintf("C%04d", i+1),
			"name":        freshName(),
			"city":        c.Name,
			"country":     c.Country,
			"signup_date": FormatDateWords(y, m, d),
			"segment":     segments[rng.Intn(len(segments))],
		})
	}

	// Near-duplicates: re-emit some rows with typos, case changes and the
	// alternative date format.
	nDup := int(float64(n) * dupRate)
	duplicated := make(map[int]bool, nDup)
	for k := 0; k < nDup; k++ {
		i := rng.Intn(n)
		duplicated[i] = true
		orig := set.Rows[i]
		dup := Row{}
		for c, v := range orig {
			dup[c] = v
		}
		dup["customer_id"] = fmt.Sprintf("C%04d", len(set.Rows)+1)
		dup["name"] = perturbName(rng, orig["name"])
		if y, m, d, ok := parseWordsDate(orig["signup_date"]); ok {
			dup["signup_date"] = FormatDateSlash(y, m, d)
		}
		if rng.Float64() < 0.5 {
			dup["city"] = strings.ToUpper(orig["city"])
		}
		set.DuplicatePairs = append(set.DuplicatePairs, [2]int{i, len(set.Rows)})
		set.Rows = append(set.Rows, dup)
	}

	// Missing cells (never the key, and never on rows participating in a
	// duplicate pair, to keep the gold pairs intact).
	for i := 0; i < n; i++ {
		if duplicated[i] {
			continue
		}
		for _, c := range []string{"city", "country", "segment"} {
			if rng.Float64() < missingRate {
				set.MissingCells = append(set.MissingCells, MissingCell{Row: i, Col: c, Gold: set.Rows[i][c]})
				set.Rows[i][c] = ""
			}
		}
	}
	return set
}

// perturbName introduces one small typo or case change.
func perturbName(rng *rand.Rand, name string) string {
	switch rng.Intn(3) {
	case 0:
		return strings.ToUpper(name)
	case 1: // drop one interior character
		if len(name) > 4 {
			i := 1 + rng.Intn(len(name)-2)
			return name[:i] + name[i+1:]
		}
		return name
	default: // duplicate one character
		i := rng.Intn(len(name))
		return name[:i] + string(name[i]) + name[i:]
	}
}

// parseWordsDate parses "Aug 14 2023".
func parseWordsDate(s string) (y, m, d int, ok bool) {
	parts := strings.Fields(s)
	if len(parts) != 3 {
		return 0, 0, 0, false
	}
	for i, mo := range months {
		if strings.EqualFold(mo, parts[0]) {
			m = i + 1
		}
	}
	if m == 0 {
		return 0, 0, 0, false
	}
	if _, err := fmt.Sscanf(parts[1], "%d", &d); err != nil {
		return 0, 0, 0, false
	}
	if _, err := fmt.Sscanf(parts[2], "%d", &y); err != nil {
		return 0, 0, 0, false
	}
	return y, m, d, true
}

// ColumnTypeSample is one labeled column for the column-type-annotation
// task: sample values plus the gold type label (paper Section II-C1).
type ColumnTypeSample struct {
	Values []string
	Gold   string
}

// GenColumnTypeBench generates labeled columns over the paper's example
// label set (country, person, date, movie, sports) plus city and number.
func GenColumnTypeBench(seed int64, n int) []ColumnTypeSample {
	rng := rand.New(rand.NewSource(seed))
	kb := GenKB(seed + 11)
	sportsVals := []string{"Basketball", "Badminton", "Table Tennis", "Football", "Cricket", "Rugby", "Tennis", "Hockey"}
	movieVals := []string{"The Silent Sea", "Granite Sky", "Midnight Ledger", "Paper Comets", "The Long Portage", "Iron Harvest", "Glass Harbor", "Northern Line"}

	var out []ColumnTypeSample
	for i := 0; i < n; i++ {
		var s ColumnTypeSample
		k := 3 + rng.Intn(3)
		switch i % 6 {
		case 0:
			s.Gold = "country"
			for j := 0; j < k; j++ {
				s.Values = append(s.Values, countries[rng.Intn(len(countries))])
			}
		case 1:
			s.Gold = "person"
			for j := 0; j < k; j++ {
				s.Values = append(s.Values, kb.People[rng.Intn(len(kb.People))].Name)
			}
		case 2:
			s.Gold = "date"
			for j := 0; j < k; j++ {
				y, m, d := 1990+rng.Intn(34), 1+rng.Intn(12), 1+rng.Intn(28)
				switch rng.Intn(3) {
				case 0:
					s.Values = append(s.Values, FormatDateWords(y, m, d))
				case 1:
					s.Values = append(s.Values, FormatDateSlash(y, m, d))
				default:
					s.Values = append(s.Values, FormatDateISO(y, m, d))
				}
			}
		case 3:
			s.Gold = "movie"
			for j := 0; j < k; j++ {
				s.Values = append(s.Values, movieVals[rng.Intn(len(movieVals))])
			}
		case 4:
			s.Gold = "sports"
			for j := 0; j < k; j++ {
				s.Values = append(s.Values, sportsVals[rng.Intn(len(sportsVals))])
			}
		default:
			s.Gold = "city"
			for j := 0; j < k; j++ {
				s.Values = append(s.Values, cityNames[rng.Intn(len(cityNames))])
			}
		}
		out = append(out, s)
	}
	return out
}
