package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// QueryProfile is the feature vector of one analytical query for the
// AI4DB training-data workload: the <query, execution_time> pairs the paper
// feeds learning-based optimizers with (Section II-A2, Figure 3).
type QueryProfile struct {
	ID         int
	SQL        string  // a rendered representative query
	NumJoins   int     // joins in the plan
	NumPreds   int     // predicates in WHERE
	ScanRows   int     // total base-table rows scanned
	HasAgg     bool    // aggregation present
	ExecTimeMS float64 // measured (synthetic ground truth) execution time
}

// Features returns the numeric feature vector used by learned estimators.
// Components are scaled to roughly [0, 1] so gradient-based learners
// (the federated fine-tuning simulation) stay stable at ordinary learning
// rates.
func (q QueryProfile) Features() []float64 {
	agg := 0.0
	if q.HasAgg {
		agg = 1
	}
	return []float64{
		float64(q.NumJoins) / 3,
		float64(q.NumPreds) / 4,
		math.Log1p(float64(q.ScanRows)) / 14,
		agg,
	}
}

// trueExecModel is the hidden cost model generating ground-truth execution
// times: scan cost, a superlinear join penalty, a predicate discount and
// an aggregation surcharge, plus multiplicative noise.
func trueExecModel(rng *rand.Rand, j, p, rows int, agg bool) float64 {
	t := 0.002 * float64(rows)
	t *= math.Pow(1.9, float64(j))
	t *= math.Pow(0.85, float64(p))
	if agg {
		t *= 1.3
	}
	t *= 0.8 + 0.4*rng.Float64()
	return math.Max(t, 0.05)
}

// GenQueryWorkload generates n query profiles with ground-truth execution
// times.
func GenQueryWorkload(seed int64, n int) []QueryProfile {
	rng := rand.New(rand.NewSource(seed))
	tables := []string{"orders", "lineitem", "customer", "part", "supplier"}
	var out []QueryProfile
	for i := 0; i < n; i++ {
		j := rng.Intn(4)
		p := 1 + rng.Intn(4)
		rows := 1000 * (1 + rng.Intn(500))
		agg := rng.Float64() < 0.4
		sql := fmt.Sprintf("SELECT * FROM %s", tables[rng.Intn(len(tables))])
		for k := 0; k < j; k++ {
			sql += fmt.Sprintf(" JOIN %s ON 1 = 1", tables[rng.Intn(len(tables))])
		}
		sql += " WHERE a > 0"
		for k := 1; k < p; k++ {
			sql += fmt.Sprintf(" AND c%d < %d", k, rng.Intn(100))
		}
		out = append(out, QueryProfile{
			ID:         i,
			SQL:        sql,
			NumJoins:   j,
			NumPreds:   p,
			ScanRows:   rows,
			HasAgg:     agg,
			ExecTimeMS: trueExecModel(rng, j, p, rows, agg),
		})
	}
	return out
}
