package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/sqlkit"
)

// EmployeeDB builds a second NL2SQL domain — employees assigned to
// projects and attending trainings — used to show the domain-generic
// translator working beyond the concert schema.
func EmployeeDB(seed int64) *sqlkit.DB {
	rng := rand.New(rand.NewSource(seed))
	db := sqlkit.NewDB()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(db.CreateTable("employee", []sqlkit.Column{
		{Name: "employee_id", Type: sqlkit.TInt},
		{Name: "name", Type: sqlkit.TText},
		{Name: "department", Type: sqlkit.TText},
		{Name: "salary", Type: sqlkit.TInt},
	}))
	must(db.CreateTable("project_assignment", []sqlkit.Column{
		{Name: "assign_id", Type: sqlkit.TInt},
		{Name: "employee_id", Type: sqlkit.TInt},
		{Name: "year", Type: sqlkit.TInt},
	}))
	must(db.CreateTable("training_session", []sqlkit.Column{
		{Name: "session_id", Type: sqlkit.TInt},
		{Name: "employee_id", Type: sqlkit.TInt},
		{Name: "year", Type: sqlkit.TInt},
	}))

	departments := []string{"engineering", "finance", "operations", "research"}
	kb := GenKB(seed + 23)
	n := 16
	for i := 0; i < n; i++ {
		must(db.InsertRow("employee", []sqlkit.Value{
			sqlkit.IntVal(int64(i + 1)),
			sqlkit.StringVal(kb.People[i%len(kb.People)].Name),
			sqlkit.StringVal(departments[rng.Intn(len(departments))]),
			sqlkit.IntVal(int64(40000 + rng.Intn(12)*5000)),
		}))
	}
	aid, sid := 1, 1
	for year := 2013; year <= 2018; year++ {
		for i := 0; i < n; i++ {
			for k := 0; k < rng.Intn(3); k++ {
				must(db.InsertRow("project_assignment", []sqlkit.Value{
					sqlkit.IntVal(int64(aid)), sqlkit.IntVal(int64(i + 1)), sqlkit.IntVal(int64(year)),
				}))
				aid++
			}
			if rng.Float64() < 0.4 {
				must(db.InsertRow("training_session", []sqlkit.Value{
					sqlkit.IntVal(int64(sid)), sqlkit.IntVal(int64(i + 1)), sqlkit.IntVal(int64(year)),
				}))
				sid++
			}
		}
	}
	return db
}

// EmployeeQuestions renders n deterministic NL questions over the
// employee domain, with their gold SQL produced by the same phrase
// vocabulary the DomainSpec grammar accepts.
func EmployeeQuestions(seed int64, n int) []NLQuery {
	rng := rand.New(rand.NewSource(seed))
	years := []int{2013, 2014, 2015, 2016, 2017}
	type atom struct {
		phrase string
		sql    string
	}
	eventAtom := func(verb, noun, table string, year int) atom {
		return atom{
			phrase: fmt.Sprintf("%s %s in %d", verb, noun, year),
			sql: fmt.Sprintf("SELECT DISTINCT h.name FROM employee AS h JOIN %s AS e ON h.employee_id = e.employee_id WHERE e.year = %d",
				table, year),
		}
	}
	attrAtom := func(op string, nv int) atom {
		word := "greater"
		if op == "<" {
			word = "smaller"
		}
		return atom{
			phrase: fmt.Sprintf("have a salary %s than %d", word, nv),
			sql:    fmt.Sprintf("SELECT name FROM employee WHERE salary %s %d", op, nv),
		}
	}
	randomAtom := func() atom {
		switch rng.Intn(4) {
		case 0:
			return attrAtom(pick(rng, []string{">", "<"}), 45000+rng.Intn(8)*5000)
		case 1:
			return eventAtom("attended", "trainings", "training_session", years[rng.Intn(len(years))])
		default:
			return eventAtom("worked on", "projects", "project_assignment", years[rng.Intn(len(years))])
		}
	}

	var out []NLQuery
	for i := 0; i < n; i++ {
		head := pick(rng, []string{"What are the names of employees that", "Show the names of employees that"})
		var q NLQuery
		q.ID = i
		if i%2 == 0 {
			a, b := randomAtom(), randomAtom()
			for b.phrase == a.phrase {
				b = randomAtom()
			}
			switch rng.Intn(3) {
			case 0:
				q.Text = fmt.Sprintf("%s %s or %s?", head, a.phrase, b.phrase)
				q.GoldSQL = a.sql + " UNION " + b.sql
				q.Conn = ConnOr
			case 1:
				q.Text = fmt.Sprintf("%s %s and %s?", head, a.phrase, b.phrase)
				q.GoldSQL = a.sql + " INTERSECT " + b.sql
				q.Conn = ConnAnd
			default:
				q.Text = fmt.Sprintf("%s %s but not %s?", head, a.phrase, b.phrase)
				q.GoldSQL = a.sql + " EXCEPT " + b.sql
				q.Conn = ConnNot
			}
			q.Class = Compound
		} else {
			a := randomAtom()
			q.Text = fmt.Sprintf("%s %s?", head, a.phrase)
			q.GoldSQL = a.sql
			q.Class = Simple
		}
		out = append(out, q)
	}
	return out
}
