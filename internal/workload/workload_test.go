package workload

import (
	"encoding/json"
	"encoding/xml"
	"strings"
	"testing"
)

func TestGenKBDeterministic(t *testing.T) {
	a, b := GenKB(1), GenKB(1)
	if len(a.People) != len(b.People) {
		t.Fatal("sizes differ")
	}
	for i := range a.People {
		if a.People[i] != b.People[i] {
			t.Fatalf("person %d differs", i)
		}
	}
	c := GenKB(2)
	same := true
	for i := range a.People {
		if a.People[i] != c.People[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical KBs")
	}
}

func TestGenQAStructure(t *testing.T) {
	set := GenQA(42, 40)
	if len(set.Items) != 40 {
		t.Fatalf("items = %d", len(set.Items))
	}
	hops1, hops2 := 0, 0
	for _, it := range set.Items {
		if it.Question == "" || it.Answer == "" {
			t.Errorf("item %d incomplete: %+v", it.ID, it)
		}
		if it.Answer == it.Distractor {
			t.Errorf("item %d distractor equals answer", it.ID)
		}
		if it.Difficulty < 0 || it.Difficulty > 1 {
			t.Errorf("item %d difficulty %v out of range", it.ID, it.Difficulty)
		}
		switch it.Hops {
		case 1:
			hops1++
			if it.Difficulty > 0.45 {
				t.Errorf("1-hop item %d too hard: %v", it.ID, it.Difficulty)
			}
		case 2:
			hops2++
			if it.Difficulty < 0.45 {
				t.Errorf("2-hop item %d too easy: %v", it.ID, it.Difficulty)
			}
		default:
			t.Errorf("item %d has %d hops", it.ID, it.Hops)
		}
		if len(it.Facts) != it.Hops {
			t.Errorf("item %d: %d facts for %d hops", it.ID, len(it.Facts), it.Hops)
		}
	}
	if hops1 != 20 || hops2 != 20 {
		t.Errorf("hop mix %d/%d, want 20/20", hops1, hops2)
	}
}

func TestQAAnswersSupportedByFacts(t *testing.T) {
	set := GenQA(7, 60)
	for _, it := range set.Items {
		ctx := it.ContextFor()
		if !strings.Contains(ctx, it.Answer) {
			t.Errorf("item %d: answer %q not in context %q", it.ID, it.Answer, ctx)
		}
	}
}

func TestKBFactsCoverEntities(t *testing.T) {
	kb := GenKB(3)
	facts := strings.Join(kb.Facts(), "\n")
	for _, p := range kb.People {
		if !strings.Contains(facts, p.Name) {
			t.Errorf("facts missing person %s", p.Name)
		}
	}
}

func TestConcertDBQueryable(t *testing.T) {
	db := ConcertDB(5)
	r, err := db.Exec("SELECT COUNT(*) FROM stadium")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].Int != 18 {
		t.Errorf("stadiums = %v", r.Rows[0][0])
	}
	r, err = db.Exec("SELECT COUNT(*) FROM concert")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].Int == 0 {
		t.Error("no concerts generated")
	}
}

func TestGenNL2SQLGoldExecutes(t *testing.T) {
	db := ConcertDB(5)
	qs := GenNL2SQL(11, 50)
	if len(qs) != 50 {
		t.Fatalf("queries = %d", len(qs))
	}
	classes := map[QueryClass]int{}
	for _, q := range qs {
		classes[q.Class]++
		r, err := db.Exec(q.GoldSQL)
		if err != nil {
			t.Errorf("gold SQL for %q does not execute: %v\n  %s", q.Text, err, q.GoldSQL)
			continue
		}
		_ = r
		if q.Text == "" || !strings.HasSuffix(q.Text, "?") {
			t.Errorf("NL text malformed: %q", q.Text)
		}
	}
	if classes[Compound] == 0 || classes[Simple] == 0 || classes[Superlative] == 0 {
		t.Errorf("class mix incomplete: %v", classes)
	}
	if classes[Compound] < classes[Simple] {
		t.Errorf("compound should dominate: %v", classes)
	}
}

func TestNL2SQLSharedSubqueries(t *testing.T) {
	// The small atom vocabulary must yield shared atoms across queries —
	// the precondition for Figure 7's sharing experiment.
	qs := GenNL2SQL(11, 40)
	seen := map[string]int{}
	for _, q := range qs {
		for _, a := range q.Atoms {
			seen[a.Phrase()]++
		}
	}
	shared := 0
	for _, n := range seen {
		if n > 1 {
			shared++
		}
	}
	if shared < 5 {
		t.Errorf("only %d atoms shared across queries; sharing experiment would be vacuous", shared)
	}
}

func TestAtomSQLForms(t *testing.T) {
	db := ConcertDB(5)
	atoms := []Atom{
		{Kind: "event", Event: "concerts", Year: 2014},
		{Kind: "event", Event: "sports meetings", Year: 2015},
		{Kind: "most", Event: "concerts", Year: 2014},
		{Kind: "capacity", CapOp: ">", CapN: 60000},
	}
	for _, a := range atoms {
		if _, err := db.Exec(a.SQL()); err != nil {
			t.Errorf("atom %v SQL fails: %v", a, err)
		}
		if a.Phrase() == "?" {
			t.Errorf("atom %v has no phrase", a)
		}
	}
	most := atoms[2]
	r, _ := db.Exec(most.SQL())
	if len(r.Rows) != 1 {
		t.Errorf("superlative returned %d rows, want 1", len(r.Rows))
	}
}

func TestGenCustomersDefects(t *testing.T) {
	set := GenCustomers(21, 100, 0.1, 0.2)
	if len(set.Rows) != 120 {
		t.Fatalf("rows = %d, want 120", len(set.Rows))
	}
	if len(set.DuplicatePairs) != 20 {
		t.Errorf("dup pairs = %d, want 20", len(set.DuplicatePairs))
	}
	if len(set.MissingCells) == 0 {
		t.Error("no missing cells injected")
	}
	for _, mc := range set.MissingCells {
		if set.Rows[mc.Row][mc.Col] != "" {
			t.Errorf("cell (%d,%s) not blanked", mc.Row, mc.Col)
		}
		if mc.Gold == "" {
			t.Errorf("cell (%d,%s) has empty gold", mc.Row, mc.Col)
		}
	}
	for _, dp := range set.DuplicatePairs {
		a, b := set.Rows[dp[0]], set.Rows[dp[1]]
		if a["customer_id"] == b["customer_id"] {
			t.Error("duplicate pair shares key")
		}
		if a["country"] != b["country"] {
			t.Error("duplicate pair should share country")
		}
	}
}

func TestDateFormats(t *testing.T) {
	if got := FormatDateWords(2023, 8, 14); got != "Aug 14 2023" {
		t.Errorf("words = %q", got)
	}
	if got := FormatDateSlash(2023, 8, 14); got != "8/14/2023" {
		t.Errorf("slash = %q", got)
	}
	if got := FormatDateISO(2023, 8, 14); got != "2023-08-14" {
		t.Errorf("iso = %q", got)
	}
	y, m, d, ok := parseWordsDate("Aug 14 2023")
	if !ok || y != 2023 || m != 8 || d != 14 {
		t.Errorf("parse = %d %d %d %v", y, m, d, ok)
	}
}

func TestGenColumnTypeBench(t *testing.T) {
	cols := GenColumnTypeBench(31, 30)
	if len(cols) != 30 {
		t.Fatalf("cols = %d", len(cols))
	}
	golds := map[string]bool{}
	for _, c := range cols {
		if len(c.Values) < 3 {
			t.Errorf("column has %d values", len(c.Values))
		}
		golds[c.Gold] = true
	}
	for _, want := range []string{"country", "person", "date", "movie", "sports", "city"} {
		if !golds[want] {
			t.Errorf("gold label %q never generated", want)
		}
	}
}

func TestGenDocsFormatsParse(t *testing.T) {
	docs := GenDocs(41, 9)
	formats := map[string]int{}
	for _, d := range docs {
		formats[d.Format]++
		if len(d.Gold) == 0 {
			t.Errorf("doc %d has no gold rows", d.ID)
		}
		switch d.Format {
		case "xml":
			var pl patientList
			if err := xml.Unmarshal([]byte(d.Body), &pl); err != nil {
				t.Errorf("doc %d xml invalid: %v", d.ID, err)
			}
			if len(pl.Patients) != len(d.Gold) {
				t.Errorf("doc %d: %d xml records vs %d gold", d.ID, len(pl.Patients), len(d.Gold))
			}
		case "json":
			var recs []patientRecord
			if err := json.Unmarshal([]byte(d.Body), &recs); err != nil {
				t.Errorf("doc %d json invalid: %v", d.ID, err)
			}
		case "sheet":
			if !strings.Contains(d.Body, "\t") {
				t.Errorf("doc %d sheet has no tabs", d.ID)
			}
		}
	}
	if formats["xml"] != 3 || formats["json"] != 3 || formats["sheet"] != 3 {
		t.Errorf("format mix = %v", formats)
	}
}

func TestGenQueryWorkload(t *testing.T) {
	qs := GenQueryWorkload(51, 200)
	if len(qs) != 200 {
		t.Fatalf("queries = %d", len(qs))
	}
	// Execution time must grow with joins on average (the signal the
	// training-data generation experiment predicts).
	sum := map[int]float64{}
	cnt := map[int]int{}
	for _, q := range qs {
		if q.ExecTimeMS <= 0 {
			t.Errorf("query %d nonpositive time", q.ID)
		}
		if len(q.Features()) != 4 {
			t.Errorf("feature size wrong")
		}
		sum[q.NumJoins] += q.ExecTimeMS
		cnt[q.NumJoins]++
	}
	if cnt[0] == 0 || cnt[3] == 0 {
		t.Skip("join mix degenerate for this seed")
	}
	if sum[3]/float64(cnt[3]) <= sum[0]/float64(cnt[0]) {
		t.Error("3-join queries not slower than 0-join queries on average")
	}
}

func BenchmarkGenQA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GenQA(int64(i), 40)
	}
}

func BenchmarkConcertDB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ConcertDB(int64(i))
	}
}

func TestEmployeeDBAndQuestions(t *testing.T) {
	db := EmployeeDB(3)
	r, err := db.Exec("SELECT COUNT(*) FROM employee")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].Int != 16 {
		t.Errorf("employees = %v", r.Rows[0][0])
	}
	for _, tbl := range []string{"project_assignment", "training_session"} {
		r, err := db.Exec("SELECT COUNT(*) FROM " + tbl)
		if err != nil {
			t.Fatal(err)
		}
		if r.Rows[0][0].Int == 0 {
			t.Errorf("%s empty", tbl)
		}
	}
	qs := EmployeeQuestions(5, 30)
	if len(qs) != 30 {
		t.Fatalf("questions = %d", len(qs))
	}
	compound := 0
	for _, q := range qs {
		if _, err := db.Exec(q.GoldSQL); err != nil {
			t.Errorf("gold SQL for %q fails: %v", q.Text, err)
		}
		if q.Class == Compound {
			compound++
		}
	}
	if compound == 0 {
		t.Error("no compound employee questions")
	}
}
