package workload

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"math/rand"
)

// Doc is one semi-structured document for the table-transformation workload
// (paper Figure 4): the same records serialized as XML, JSON or a
// spreadsheet-like grid, plus the gold relational rows.
type Doc struct {
	ID     int
	Format string // "xml", "json", "sheet"
	Body   string
	// Gold is the relational content: one Row per record, all sharing Cols.
	Cols []string
	Gold []Row
}

// patientRecord mirrors the paper's healthcare motivation: diagnostic
// reports arriving as XML/JSON that should become relational rows.
type patientRecord struct {
	XMLName   xml.Name `xml:"patient" json:"-"`
	PatientID string   `xml:"patient_id" json:"patient_id"`
	Name      string   `xml:"name" json:"name"`
	Age       int      `xml:"age" json:"age"`
	Diagnosis string   `xml:"diagnosis" json:"diagnosis"`
	LabValue  float64  `xml:"lab_value" json:"lab_value"`
}

type patientList struct {
	XMLName  xml.Name        `xml:"patients"`
	Patients []patientRecord `xml:"patient"`
}

var diagnoses = []string{"hypertension", "diabetes", "asthma", "arrhythmia", "anemia", "migraine"}

// GenDocs generates n documents cycling through the three source formats.
// Each document holds several patient records.
func GenDocs(seed int64, n int) []Doc {
	rng := rand.New(rand.NewSource(seed))
	kb := GenKB(seed + 13)
	var out []Doc
	for i := 0; i < n; i++ {
		nrec := 2 + rng.Intn(4)
		var recs []patientRecord
		var gold []Row
		for j := 0; j < nrec; j++ {
			p := kb.People[rng.Intn(len(kb.People))]
			r := patientRecord{
				PatientID: fmt.Sprintf("P%03d-%d", i, j),
				Name:      p.Name,
				Age:       18 + rng.Intn(70),
				Diagnosis: diagnoses[rng.Intn(len(diagnoses))],
				LabValue:  float64(rng.Intn(2000)) / 10,
			}
			recs = append(recs, r)
			gold = append(gold, Row{
				"patient_id": r.PatientID,
				"name":       r.Name,
				"age":        fmt.Sprintf("%d", r.Age),
				"diagnosis":  r.Diagnosis,
				"lab_value":  fmt.Sprintf("%g", r.LabValue),
			})
		}
		d := Doc{ID: i, Cols: []string{"patient_id", "name", "age", "diagnosis", "lab_value"}, Gold: gold}
		switch i % 3 {
		case 0:
			d.Format = "xml"
			b, err := xml.MarshalIndent(patientList{Patients: recs}, "", "  ")
			if err != nil {
				panic(err)
			}
			d.Body = string(b)
		case 1:
			d.Format = "json"
			b, err := json.MarshalIndent(recs, "", "  ")
			if err != nil {
				panic(err)
			}
			d.Body = string(b)
		default:
			d.Format = "sheet"
			d.Body = sheetBody(recs, rng)
		}
		out = append(out, d)
	}
	return out
}

// sheetBody renders records as a spreadsheet-style grid with the
// non-relational clutter real sheets have: a title row, a blank row, a
// header row, then data (paper: "spreadsheets ... may contain hierarchical
// structure, or redundant rows and columns").
func sheetBody(recs []patientRecord, rng *rand.Rand) string {
	out := "Patient Lab Report\n\n"
	out += "patient_id\tname\tage\tdiagnosis\tlab_value\n"
	for _, r := range recs {
		out += fmt.Sprintf("%s\t%s\t%d\t%s\t%g\n", r.PatientID, r.Name, r.Age, r.Diagnosis, r.LabValue)
	}
	if rng.Float64() < 0.5 {
		out += "TOTAL\t\t\t\t-\n" // redundant footer row
	}
	return out
}
