// Package workload generates the synthetic datasets the paper's experiments
// run on: a multi-hop question-answering benchmark standing in for HotpotQA
// (Table I, Table III), a Spider-style NL2SQL suite over the concert/stadium
// domain (Table II), tabular data with quality defects for the integration
// and transformation applications (Sections II-B, II-C), semi-structured
// XML/JSON documents (Figure 4), and an AI4DB training-data workload of
// <query, execution_time> pairs (Figure 3).
//
// All generators are seeded and deterministic.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// QAItem is one question with its gold answer and supporting facts.
// Difficulty in [0,1] drives the simulated LLM's capability calibration:
// multi-hop questions are harder than single-hop ones, matching HotpotQA's
// structure.
type QAItem struct {
	ID         int
	Question   string
	Answer     string
	Hops       int
	Difficulty float64
	// Facts are the knowledge-base sentences that support the answer; they
	// form the retrieval context a RAG pipeline would supply.
	Facts []string
	// Distractor is a plausible wrong answer of the same type, used by the
	// simulated LLM when it errs.
	Distractor string
	// Subs decomposes a multi-hop question into single-hop sub-questions
	// (empty for 1-hop items). The final sub-question's answer is the
	// item's answer; answering via the chain is easier per step — the
	// mechanism behind sub-query caching in Table III.
	Subs []QASub
	// Sub2Template rebuilds the second-hop question from the first hop's
	// answer (e.g. "In which country is the city %s?"), so a chained
	// answerer that got hop 1 wrong genuinely asks about the wrong entity.
	Sub2Template string
	// Context is the retrieval context a RAG pipeline would supply: the
	// supporting paragraphs plus distractor paragraphs, shuffled — the
	// 10-paragraph structure of HotpotQA, and the bulk of the prompt's
	// token cost.
	Context []string
}

// ResolveSecondHop answers a second-hop question about the named entity
// from the knowledge base: the true country of a city, or the true HQ city
// of an organization. ok is false when the entity does not exist (e.g. the
// first hop hallucinated it).
func (kb *KnowledgeBase) ResolveSecondHop(template, entity string) (answer, distractor string, ok bool) {
	switch {
	case strings.Contains(template, "country is the city"):
		for _, c := range kb.Cities {
			if c.Name == entity {
				return c.Country, otherCountryDet(c.Country), true
			}
		}
	case strings.Contains(template, "headquartered"):
		for _, o := range kb.Orgs {
			if o.Name == entity {
				hq := kb.Cities[o.HQ].Name
				return hq, otherCityDet(kb, hq), true
			}
		}
	}
	return "", "", false
}

// otherCountryDet returns a deterministic different country.
func otherCountryDet(not string) string {
	for _, c := range countries {
		if c != not {
			return c
		}
	}
	return countries[0]
}

// otherCityDet returns a deterministic different city name.
func otherCityDet(kb *KnowledgeBase, not string) string {
	for _, c := range kb.Cities {
		if c.Name != not {
			return c.Name
		}
	}
	return kb.Cities[0].Name
}

// QASub is one single-hop sub-question of a multi-hop item.
type QASub struct {
	Question   string
	Answer     string
	Distractor string
	Difficulty float64
	// Context is the (smaller) retrieval context for the sub-question: its
	// supporting paragraph plus a few distractors. Sub-question prompts
	// being shorter than the original's is part of the cache experiment's
	// cost accounting.
	Context string
}

// QASet is a generated QA benchmark plus the knowledge base it was drawn
// from.
type QASet struct {
	Items []QAItem
	KB    *KnowledgeBase
}

// KnowledgeBase is a tiny entity-relation store: people born in cities,
// cities in countries, people employed by organizations headquartered in
// cities.
type KnowledgeBase struct {
	People []Person
	Cities []City
	Orgs   []Org
}

// Person is one person entity.
type Person struct {
	Name     string
	BornIn   int // index into Cities
	WorksFor int // index into Orgs
	Field    string
}

// City is one city entity.
type City struct {
	Name    string
	Country string
}

// Org is one organization entity.
type Org struct {
	Name    string
	HQ      int // index into Cities
	Founded int
}

var (
	firstNames = []string{"Alice", "Bruno", "Chen", "Dana", "Elif", "Farid", "Grace", "Hiro", "Ines", "Jonas", "Kira", "Liam", "Mei", "Nadia", "Omar", "Priya", "Quinn", "Rosa", "Santiago", "Tara"}
	lastNames  = []string{"Anderson", "Baptiste", "Costa", "Dubois", "Eriksen", "Fernandez", "Garcia", "Hansen", "Ivanov", "Jensen", "Kovacs", "Larsen", "Moreau", "Novak", "Okafor", "Petrov", "Quintero", "Rossi", "Silva", "Tanaka"}
	cityNames  = []string{"Arlington", "Bergen", "Cusco", "Dresden", "Esbjerg", "Fukuoka", "Ghent", "Haifa", "Izmir", "Jaipur", "Kyoto", "Lyon", "Malmo", "Nantes", "Odense", "Porto", "Quebec", "Riga", "Seville", "Turin"}
	countries  = []string{"Atlantia", "Borduria", "Carpathia", "Dalmatia", "Elbonia", "Florin", "Genovia", "Hyrkania"}
	orgStems   = []string{"Apex", "Borealis", "Cobalt", "Deltaic", "Ember", "Fjord", "Granite", "Helix", "Iris", "Juniper", "Krypton", "Lumen", "Meridian", "Nimbus", "Onyx", "Pinnacle"}
	orgKinds   = []string{"Labs", "Systems", "Analytics", "Dynamics", "Institute", "Group"}
	fields     = []string{"databases", "genomics", "astrophysics", "linguistics", "materials science", "economics"}
)

// GenKB builds a deterministic knowledge base.
func GenKB(seed int64) *KnowledgeBase {
	rng := rand.New(rand.NewSource(seed))
	kb := &KnowledgeBase{}
	for _, name := range cityNames {
		kb.Cities = append(kb.Cities, City{Name: name, Country: countries[rng.Intn(len(countries))]})
	}
	for _, stem := range orgStems {
		kb.Orgs = append(kb.Orgs, Org{
			Name:    stem + " " + orgKinds[rng.Intn(len(orgKinds))],
			HQ:      rng.Intn(len(kb.Cities)),
			Founded: 1900 + rng.Intn(120),
		})
	}
	used := map[string]bool{}
	for _, f := range firstNames {
		l := lastNames[rng.Intn(len(lastNames))]
		name := f + " " + l
		for used[name] {
			l = lastNames[rng.Intn(len(lastNames))]
			name = f + " " + l
		}
		used[name] = true
		kb.People = append(kb.People, Person{
			Name:     name,
			BornIn:   rng.Intn(len(kb.Cities)),
			WorksFor: rng.Intn(len(kb.Orgs)),
			Field:    fields[rng.Intn(len(fields))],
		})
	}
	return kb
}

// Facts renders the knowledge base as natural-language sentences — the
// corpus a retrieval layer indexes.
func (kb *KnowledgeBase) Facts() []string {
	var out []string
	for _, c := range kb.Cities {
		out = append(out, fmt.Sprintf("%s is a city in %s.", c.Name, c.Country))
	}
	for _, o := range kb.Orgs {
		out = append(out, fmt.Sprintf("%s is headquartered in %s and was founded in %d.", o.Name, kb.Cities[o.HQ].Name, o.Founded))
	}
	for _, p := range kb.People {
		out = append(out, fmt.Sprintf("%s was born in %s and researches %s at %s.", p.Name, kb.Cities[p.BornIn].Name, p.Field, kb.Orgs[p.WorksFor].Name))
	}
	return out
}

// GenQA generates n QA items over a fresh knowledge base. Roughly half the
// questions are single-hop (easy) and half multi-hop (hard), matching the
// HotpotQA profile of Table I's 40-query sample.
func GenQA(seed int64, n int) *QASet {
	kb := GenKB(seed)
	rng := rand.New(rand.NewSource(seed + 1))
	set := &QASet{KB: kb}
	for i := 0; i < n; i++ {
		p := kb.People[rng.Intn(len(kb.People))]
		born := kb.Cities[p.BornIn]
		org := kb.Orgs[p.WorksFor]
		hq := kb.Cities[org.HQ]

		var it QAItem
		it.ID = i
		switch i % 4 {
		case 0: // 1-hop: birth city
			it.Question = fmt.Sprintf("In which city was %s born?", p.Name)
			it.Answer = born.Name
			it.Hops = 1
			it.Facts = []string{personFact(kb, p)}
			it.Distractor = otherCity(kb, rng, p.BornIn)
		case 1: // 1-hop: employer
			it.Question = fmt.Sprintf("Which organization does %s work for?", p.Name)
			it.Answer = org.Name
			it.Hops = 1
			it.Facts = []string{personFact(kb, p)}
			it.Distractor = otherOrg(kb, rng, p.WorksFor)
		case 2: // 2-hop: country of birth city
			it.Question = fmt.Sprintf("In which country was %s born?", p.Name)
			it.Answer = born.Country
			it.Hops = 2
			it.Facts = []string{personFact(kb, p), cityFact(born)}
			it.Distractor = otherCountry(rng, born.Country)
			it.Subs = []QASub{
				{
					Question:   fmt.Sprintf("In which city was %s born?", p.Name),
					Answer:     born.Name,
					Distractor: otherCity(kb, rng, p.BornIn),
					Difficulty: 0.42 + 0.36*rng.Float64(),
				},
				{
					Question:   fmt.Sprintf("In which country is the city %s?", born.Name),
					Answer:     born.Country,
					Distractor: otherCountry(rng, born.Country),
					Difficulty: 0.42 + 0.36*rng.Float64(),
				},
			}
			it.Sub2Template = "In which country is the city %s?"
		default: // 2-hop: HQ city of employer
			it.Question = fmt.Sprintf("In which city is the organization %s works for headquartered?", p.Name)
			it.Answer = hq.Name
			it.Hops = 2
			it.Facts = []string{personFact(kb, p), orgFact(kb, org)}
			it.Distractor = otherCity(kb, rng, org.HQ)
			it.Subs = []QASub{
				{
					Question:   fmt.Sprintf("Which organization does %s work for?", p.Name),
					Answer:     org.Name,
					Distractor: otherOrg(kb, rng, p.WorksFor),
					Difficulty: 0.42 + 0.36*rng.Float64(),
				},
				{
					Question:   fmt.Sprintf("In which city is %s headquartered?", org.Name),
					Answer:     hq.Name,
					Distractor: otherCity(kb, rng, org.HQ),
					Difficulty: 0.42 + 0.36*rng.Float64(),
				},
			}
			it.Sub2Template = "In which city is %s headquartered?"
		}
		// Difficulty: 1-hop questions span [0.05, 0.45], 2-hop [0.45, 0.95].
		// A uniform spread makes a model with capability c score ~c overall.
		if it.Hops == 1 {
			it.Difficulty = 0.05 + 0.40*rng.Float64()
		} else {
			it.Difficulty = 0.45 + 0.50*rng.Float64()
		}
		// Retrieval context: supporting paragraphs first (so grounding
		// checks hold), then distractor paragraphs up to 10 total.
		paras := goldParagraphs(kb, it, p)
		for len(paras) < 10 {
			paras = append(paras, randomParagraph(kb, rng))
		}
		it.Context = paras
		for si := range it.Subs {
			sub := paras[0]
			if si > 0 && len(paras) > 1 {
				sub = paras[1]
			}
			it.Subs[si].Context = sub + " " + randomParagraph(kb, rng) + " " + randomParagraph(kb, rng) +
				" " + randomParagraph(kb, rng) + " " + randomParagraph(kb, rng)
		}
		set.Items = append(set.Items, it)
	}
	return set
}

func personFact(kb *KnowledgeBase, p Person) string {
	return fmt.Sprintf("%s was born in %s and researches %s at %s.", p.Name, kb.Cities[p.BornIn].Name, p.Field, kb.Orgs[p.WorksFor].Name)
}

func cityFact(c City) string {
	return fmt.Sprintf("%s is a city in %s.", c.Name, c.Country)
}

func orgFact(kb *KnowledgeBase, o Org) string {
	return fmt.Sprintf("%s is headquartered in %s and was founded in %d.", o.Name, kb.Cities[o.HQ].Name, o.Founded)
}

func otherCity(kb *KnowledgeBase, rng *rand.Rand, not int) string {
	for {
		i := rng.Intn(len(kb.Cities))
		if i != not {
			return kb.Cities[i].Name
		}
	}
}

func otherOrg(kb *KnowledgeBase, rng *rand.Rand, not int) string {
	for {
		i := rng.Intn(len(kb.Orgs))
		if i != not {
			return kb.Orgs[i].Name
		}
	}
}

func otherCountry(rng *rand.Rand, not string) string {
	for {
		c := countries[rng.Intn(len(countries))]
		if c != not {
			return c
		}
	}
}

// ContextFor returns the retrieval context joined into one prompt block:
// the full paragraph context when present, else the bare supporting facts.
func (it QAItem) ContextFor() string {
	if len(it.Context) > 0 {
		return strings.Join(it.Context, " ")
	}
	return strings.Join(it.Facts, " ")
}

// goldParagraphs renders the supporting paragraphs of an item, aligned
// with it.Facts (person paragraph first, then the second-hop paragraph).
func goldParagraphs(kb *KnowledgeBase, it QAItem, p Person) []string {
	out := []string{personParagraph(kb, p)}
	if it.Hops == 2 {
		if strings.Contains(it.Sub2Template, "country") {
			out = append(out, cityParagraph(kb.Cities[p.BornIn]))
		} else {
			out = append(out, orgParagraph(kb, kb.Orgs[p.WorksFor]))
		}
	}
	return out
}

// The paragraph builders pad each entity fact into a multi-sentence
// passage, giving prompts the token weight of real retrieval contexts.
func personParagraph(kb *KnowledgeBase, p Person) string {
	born := kb.Cities[p.BornIn]
	org := kb.Orgs[p.WorksFor]
	return fmt.Sprintf("%s was born in %s and researches %s at %s. "+
		"Colleagues describe %s as a meticulous investigator whose publications in %s are widely cited across the field. "+
		"After an early career spent between visiting appointments, %s settled into a permanent position at %s and has remained there since.",
		p.Name, born.Name, p.Field, org.Name, p.Name, p.Field, p.Name, org.Name)
}

func cityParagraph(c City) string {
	return fmt.Sprintf("%s is a city in %s. "+
		"The city is known for its riverside markets, a compact old quarter, and a technical institute that anchors the local economy. "+
		"Regional rail connects %s to the rest of %s within a few hours.",
		c.Name, c.Country, c.Name, c.Country)
}

func orgParagraph(kb *KnowledgeBase, o Org) string {
	hq := kb.Cities[o.HQ]
	return fmt.Sprintf("%s is headquartered in %s and was founded in %d. "+
		"The organization grew from a small research outfit into an institution with several hundred staff, and its annual symposium draws visitors from across the continent. "+
		"Its main campus sits near the center of %s.",
		o.Name, hq.Name, o.Founded, hq.Name)
}

// randomParagraph draws a distractor paragraph about a random entity.
func randomParagraph(kb *KnowledgeBase, rng *rand.Rand) string {
	switch rng.Intn(3) {
	case 0:
		return personParagraph(kb, kb.People[rng.Intn(len(kb.People))])
	case 1:
		return cityParagraph(kb.Cities[rng.Intn(len(kb.Cities))])
	default:
		return orgParagraph(kb, kb.Orgs[rng.Intn(len(kb.Orgs))])
	}
}
