package exper

import (
	"context"
	"fmt"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/proxy"
	"repro/internal/token"
	"repro/internal/workload"
)

// chaosCell is one (failure rate, stack) measurement.
type chaosCell struct {
	avail  float64
	stale  int64
	spend  token.Cost
	acctOK bool
}

// ChaosResilience is the fault-injection experiment behind `make chaos`:
// it sweeps the per-attempt upstream failure rate (injected by llm.Flaky)
// and serves the same QA workload through two proxies — a bare stack
// (semantic cache + cascade only) and the full resilience stack (retry
// with jittered exponential backoff, per-tier circuit breakers, stale
// cache serves) — measuring availability, stale serves and spend. The
// accounting column cross-checks the proxy's spend counter against the
// simulated models' own usage meters, error paths included; a MISMATCH
// would mean a failed cascade run dropped its bill.
func ChaosResilience(ctx context.Context) (Report, error) {
	rep := Report{
		ID:      "chaos",
		Title:   "fault injection: availability and spend vs upstream failure rate",
		Headers: []string{"failure rate", "bare avail", "resilient avail", "stale serves", "resilient spend", "accounting"},
		Notes: []string{
			"30 QA items x 4 rounds per cell; failures injected per attempt by llm.Flaky",
			"bare = semantic cache + cascade only; resilient adds retry with jittered backoff, per-tier circuit breakers and stale cache serves",
			"accounting: proxy spend vs the sum of the models' usage meters, error paths included",
		},
	}
	for _, rate := range []float64{0, 0.1, 0.3, 0.5} {
		bare, err := runChaosCell(ctx, rate, false)
		if err != nil {
			return rep, err
		}
		res, err := runChaosCell(ctx, rate, true)
		if err != nil {
			return rep, err
		}
		acct := "ok"
		if !bare.acctOK || !res.acctOK {
			acct = "MISMATCH"
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.0f%%", rate*100),
			f3(bare.avail),
			f3(res.avail),
			fmt.Sprintf("%d", res.stale),
			res.spend.String(),
			acct,
		})
	}
	return rep, nil
}

// runChaosCell serves the workload through one proxy configuration and
// reports availability plus the spend cross-check. Injected upstream
// failures count against availability; a canceled ctx aborts the cell.
func runChaosCell(ctx context.Context, rate float64, resilient bool) (chaosCell, error) {
	reg := obs.NewRegistry()
	small := llm.NewSim(llm.SimConfig{Name: "small", Capability: 0.55,
		Price: token.Price{InputPer1K: 400, OutputPer1K: 400}, Obs: reg})
	large := llm.NewSim(llm.SimConfig{Name: "large", Capability: 0.97,
		Price: token.Price{InputPer1K: 30000, OutputPer1K: 60000}, Obs: reg})
	wrap := func(m llm.Model) llm.Model {
		flaky := llm.NewFlaky(m, rate)
		if !resilient {
			return flaky
		}
		return &llm.Retry{Inner: flaky, Attempts: 6,
			BaseDelay: 200 * time.Microsecond, MaxDelay: 2 * time.Millisecond, Obs: reg}
	}
	p := proxy.New(proxy.Config{
		Models:         []llm.Model{wrap(small), wrap(large)},
		Obs:            reg,
		Tracer:         obs.NewTracer(8),
		DisableBreaker: !resilient,
		DisableStale:   !resilient,
		StaleFloor:     0.5,
	})
	set := workload.GenQA(11, 30)
	total, ok := 0, 0
	for round := 0; round < 4; round++ {
		for _, it := range set.Items {
			if err := ctx.Err(); err != nil {
				return chaosCell{}, err
			}
			_, err := p.Complete(ctx, llm.Request{
				Prompt: "Context: " + it.ContextFor() + "\nQ: " + it.Question,
				Gold:   it.Answer, Wrong: it.Distractor, Difficulty: it.Difficulty,
			})
			total++
			if err == nil {
				ok++
			}
		}
	}
	st := p.Stats()
	meters := small.Meter().Spend + large.Meter().Spend
	return chaosCell{
		avail:  float64(ok) / float64(total),
		stale:  st.StaleServes,
		spend:  st.Spend,
		acctOK: st.Spend == meters,
	}, nil
}
