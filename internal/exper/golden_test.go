package exper

import (
	"context"
	"strings"
	"testing"
)

// The golden tests pin the exact numbers committed in EXPERIMENTS.md.
// Everything is seeded, so any drift means a substrate changed behaviour —
// which must be a conscious decision that also updates the docs.

func assertRows(t *testing.T, rep Report, want [][]string) {
	t.Helper()
	if len(rep.Rows) != len(want) {
		t.Fatalf("%s: rows = %d, want %d", rep.ID, len(rep.Rows), len(want))
	}
	for i, w := range want {
		got := strings.Join(rep.Rows[i], " | ")
		if got != strings.Join(w, " | ") {
			t.Errorf("%s row %d:\n  got:  %s\n  want: %s\n(update EXPERIMENTS.md if this change is intentional)",
				rep.ID, i, got, strings.Join(w, " | "))
		}
	}
}

func TestGoldenTable1(t *testing.T) {
	rep, err := Table1Cascade(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, rep, [][]string{
		{"babbage-002", "37.5%", "$0.010"},
		{"gpt-3.5-turbo", "82.5%", "$0.027"},
		{"gpt-4", "92.5%", "$0.817"},
		{"LLM cascade", "92.5%", "$0.239"},
	})
}

func TestGoldenTable2(t *testing.T) {
	rep, err := Table2Decomposition(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, rep, [][]string{
		{"Origin", "77.0%", "$0.028", "100"},
		{"Decomposition", "91.0%", "$0.008", "35"},
		{"Decomposition+Combination", "91.0%", "$0.003", "35"},
	})
}

func TestGoldenTable3(t *testing.T) {
	rep, err := Table3Cache(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, rep, [][]string{
		{"w/o Cache", "80.0%", "$0.013", "20", "n/a"},
		{"Cache(O)", "80.0%", "$0.006", "10", "50%"},
		{"Cache(A)", "100.0%", "$0.006", "14", "36%"},
	})
}
