package exper

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

// parsePct converts "92.5%" to 92.5.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage %q: %v", s, err)
	}
	return v
}

// parseCost converts "$1.123" to 1.123.
func parseCost(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimPrefix(s, "$"), 64)
	if err != nil {
		t.Fatalf("bad cost %q: %v", s, err)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	rep, err := Table1Cascade(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rep.Rows))
	}
	acc := make([]float64, 4)
	cost := make([]float64, 4)
	for i, row := range rep.Rows {
		acc[i] = parsePct(t, row[1])
		cost[i] = parseCost(t, row[2])
	}
	// Paper shape: accuracy strictly increases with model tier.
	if !(acc[0] < acc[1] && acc[1] < acc[2]) {
		t.Errorf("model accuracies not increasing: %v", acc)
	}
	// Small model near 27.5%, large near 92.5%.
	if acc[0] > 45 {
		t.Errorf("small model accuracy %.1f too high", acc[0])
	}
	if acc[2] < 85 {
		t.Errorf("large model accuracy %.1f too low", acc[2])
	}
	// Cascade ≈ gpt-4 accuracy, much cheaper.
	if acc[3] < acc[2]-7.6 {
		t.Errorf("cascade accuracy %.1f too far below gpt-4 %.1f", acc[3], acc[2])
	}
	if cost[3] > cost[2]/2 {
		t.Errorf("cascade cost %.3f not well below gpt-4 %.3f", cost[3], cost[2])
	}
}

func TestTable2Shape(t *testing.T) {
	rep, err := Table2Decomposition(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	accO := parsePct(t, rep.Rows[0][1])
	accD := parsePct(t, rep.Rows[1][1])
	accC := parsePct(t, rep.Rows[2][1])
	costO := parseCost(t, rep.Rows[0][2])
	costD := parseCost(t, rep.Rows[1][2])
	costC := parseCost(t, rep.Rows[2][2])

	// Paper shape: decomposition raises accuracy AND lowers cost;
	// combination lowers cost further at equal accuracy.
	if accD <= accO {
		t.Errorf("decomposition accuracy %.1f not above origin %.1f", accD, accO)
	}
	if costD >= costO {
		t.Errorf("decomposition cost %.3f not below origin %.3f", costD, costO)
	}
	if costC >= costD {
		t.Errorf("combination cost %.3f not below decomposition %.3f", costC, costD)
	}
	if accC < accD-8 {
		t.Errorf("combination accuracy %.1f fell too far from %.1f", accC, accD)
	}
}

func TestTable3Shape(t *testing.T) {
	rep, err := Table3Cache(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	accNo := parsePct(t, rep.Rows[0][1])
	accO := parsePct(t, rep.Rows[1][1])
	accA := parsePct(t, rep.Rows[2][1])
	costNo := parseCost(t, rep.Rows[0][2])
	costO := parseCost(t, rep.Rows[1][2])
	costA := parseCost(t, rep.Rows[2][2])

	// Paper shape: Cache(O) same accuracy as w/o cache, lower cost;
	// Cache(A) higher accuracy than both at cost between Cache(O) and w/o.
	if accO != accNo {
		t.Errorf("Cache(O) accuracy %.1f differs from w/o %.1f (cached replays must match)", accO, accNo)
	}
	if accA <= accO {
		t.Errorf("Cache(A) accuracy %.1f not above Cache(O) %.1f", accA, accO)
	}
	if costO >= costNo {
		t.Errorf("Cache(O) cost %.3f not below w/o %.3f", costO, costNo)
	}
	if costA >= costNo {
		t.Errorf("Cache(A) cost %.3f not below w/o %.3f", costA, costNo)
	}
}

func TestFig6Sweep(t *testing.T) {
	rep, err := Fig6CascadeSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 10 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Threshold 0 = never escalate (cheapest, weakest); 1.01 = always
	// escalate (most expensive, strongest).
	accLo := parsePct(t, rep.Rows[0][1])
	accHi := parsePct(t, rep.Rows[6][1])
	costLo := parseCost(t, rep.Rows[0][2])
	costHi := parseCost(t, rep.Rows[6][2])
	if accLo >= accHi {
		t.Errorf("frontier inverted: acc %.1f at tau 0 vs %.1f at tau 1", accLo, accHi)
	}
	if costLo >= costHi {
		t.Errorf("cost inverted: %.3f at tau 0 vs %.3f at tau 1", costLo, costHi)
	}
	// Escalations per query are monotone in tau.
	prev := -1.0
	for i := 0; i < 7; i++ {
		e, _ := strconv.ParseFloat(rep.Rows[i][3], 64)
		if e < prev {
			t.Errorf("escalations not monotone at row %d: %v after %v", i, e, prev)
		}
		prev = e
	}
}

func TestFig7SharingGrows(t *testing.T) {
	rep, err := Fig7Sharing(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Calls saved must grow with batch size; unique sub-queries saturate.
	savedFirst, _ := strconv.Atoi(rep.Rows[0][3])
	savedLast, _ := strconv.Atoi(rep.Rows[len(rep.Rows)-1][3])
	if savedLast <= savedFirst {
		t.Errorf("sharing did not grow: %d -> %d", savedFirst, savedLast)
	}
	uniqueLast, _ := strconv.Atoi(rep.Rows[len(rep.Rows)-1][2])
	totalLast, _ := strconv.Atoi(rep.Rows[len(rep.Rows)-1][1])
	if uniqueLast >= totalLast/2 {
		t.Errorf("at batch 80 sharing should halve calls: %d unique of %d", uniqueLast, totalLast)
	}
}

func TestFig1PipelineStagesHealthy(t *testing.T) {
	rep, err := Fig1Pipeline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Every stage metric should be strong with the large model.
	if v := parsePct(t, rep.Rows[0][3]); v < 95 {
		t.Errorf("generation executable %.1f%%", v)
	}
	if v, _ := strconv.ParseFloat(rep.Rows[1][3], 64); v < 0.9 {
		t.Errorf("transformation accuracy %v", v)
	}
	if v, _ := strconv.ParseFloat(rep.Rows[2][3], 64); v < 0.5 {
		t.Errorf("integration F1 %v", v)
	}
	if v := parsePct(t, rep.Rows[3][3]); v < 60 {
		t.Errorf("exploration hit@1 %.1f%%", v)
	}
}

func TestFig2ConstraintsHelpWeakModels(t *testing.T) {
	rep, err := Fig2SQLGen(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Row 0: small model, constraints off; row 1: on.
	offExec := parsePct(t, rep.Rows[0][2])
	onExec := parsePct(t, rep.Rows[1][2])
	if onExec <= offExec {
		t.Errorf("constraint loop did not lift small-model executability: %.1f -> %.1f", offExec, onExec)
	}
	if onExec != 100 {
		t.Errorf("MustExecute left %.1f%% executable", onExec)
	}
}

func TestFig3QualityOrdering(t *testing.T) {
	rep, err := Fig3TrainGen(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	qeSmall, _ := strconv.ParseFloat(rep.Rows[0][1], 64)
	qeLarge, _ := strconv.ParseFloat(rep.Rows[2][1], 64)
	if qeLarge >= qeSmall {
		t.Errorf("large model q-error %.2f not below small %.2f", qeLarge, qeSmall)
	}
	impSmall := parsePct(t, rep.Rows[0][2])
	impLarge := parsePct(t, rep.Rows[2][2])
	if impLarge <= impSmall {
		t.Errorf("large model imputation %.1f not above small %.1f", impLarge, impSmall)
	}
}

func TestFig4SynthesisCheaperSameAccuracy(t *testing.T) {
	rep, err := Fig4Transform(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for i := 0; i < 6; i += 2 {
		direct := rep.Rows[i]
		synth := rep.Rows[i+1]
		costD := parseCost(t, direct[4])
		costS := parseCost(t, synth[4])
		if costS >= costD {
			t.Errorf("%s: synthesis cost %.4f not below direct %.4f", direct[0], costS, costD)
		}
		accD, _ := strconv.ParseFloat(direct[2], 64)
		accS, _ := strconv.ParseFloat(synth[2], 64)
		if accS < accD-0.05 {
			t.Errorf("%s: synthesis accuracy %.3f fell below direct %.3f", direct[0], accS, accD)
		}
	}
}

func TestFig5Ablations(t *testing.T) {
	rep, err := Fig5Challenges(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	get := func(challenge, config, metric string) string {
		for _, row := range rep.Rows {
			if row[0] == challenge && row[1] == config && row[2] == metric {
				return row[3]
			}
		}
		t.Fatalf("row (%s, %s, %s) missing", challenge, config, metric)
		return ""
	}
	simShare, _ := strconv.ParseFloat(get("prompt optimization", "similarity-only selection", "good-example share"), 64)
	perfShare, _ := strconv.ParseFloat(get("prompt optimization", "performance-aware selection", "good-example share"), 64)
	if perfShare <= simShare {
		t.Errorf("performance-aware selection %.3f not above similarity-only %.3f", perfShare, simShare)
	}

	costO := parseCost(t, get("query optimization", "origin", "api cost"))
	costD := parseCost(t, get("query optimization", "decomposition", "api cost"))
	if costD >= costO {
		t.Errorf("decomposition %.3f not cheaper than origin %.3f", costD, costO)
	}

	costNo := parseCost(t, get("cache optimization", "w/o cache", "api cost"))
	costA := parseCost(t, get("cache optimization", "Cache(A)", "api cost"))
	if costA >= costNo {
		t.Errorf("cache %.3f not cheaper than none %.3f", costA, costNo)
	}

	advPlain, _ := strconv.ParseFloat(get("security & privacy", "undefended training", "MIA advantage"), 64)
	advDP, _ := strconv.ParseFloat(get("security & privacy", "DP federated training", "MIA advantage"), 64)
	if advDP >= advPlain {
		t.Errorf("DP advantage %.3f not below undefended %.3f", advDP, advPlain)
	}

	rawAcc := parsePct(t, get("output validation", "accept everything", "accuracy"))
	valAcc := parsePct(t, get("output validation", "self-consistency >= 0.8", "accuracy"))
	if valAcc <= rawAcc {
		t.Errorf("validated accuracy %.1f not above raw %.1f", valAcc, rawAcc)
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 10 {
		t.Fatalf("ids = %v", ids)
	}
	if ids[0] != "table1" || ids[1] != "table2" || ids[2] != "table3" {
		t.Errorf("tables not first: %v", ids)
	}
	for _, id := range ids {
		if Registry()[id] == nil {
			t.Errorf("runner for %s missing", id)
		}
	}
}

func TestReportFormat(t *testing.T) {
	rep := Report{
		ID:      "test",
		Title:   "a test",
		Headers: []string{"a", "bbbb"},
		Rows:    [][]string{{"x", "y"}},
		Notes:   []string{"hello"},
	}
	out := rep.Format()
	for _, want := range []string{"TEST", "a test", "bbbb", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	a, err := Table1Cascade(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table1Cascade(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.Format() != b.Format() {
		t.Error("Table1 not deterministic across runs")
	}
}
