// Package exper is the benchmark harness: one function per table and
// figure in the paper's evaluation, each regenerating the corresponding
// result rows on the synthetic substrate. cmd/llmdm-bench and the root
// bench_test.go both drive this package, so the printed numbers and the
// benchmarked code paths are identical.
package exper

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Report is one regenerated table or figure.
type Report struct {
	ID      string // "table1", "fig6", ...
	Title   string
	Headers []string
	Rows    [][]string
	// Notes documents workload parameters and the paper values the shape
	// is compared against.
	Notes []string
}

// Format renders the report as an aligned text table.
func (r Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", strings.ToUpper(r.ID), r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Headers)
	sep := make([]string, len(r.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// CSV renders the report as RFC-4180-ish CSV (header row first). Cells
// containing commas or quotes are quoted.
func (r Report) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Headers)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return b.String()
}

// Runner is one experiment entry point. The context bounds the whole
// experiment: cancel it and the runner returns at the next model call.
type Runner func(ctx context.Context) (Report, error)

// Registry maps experiment IDs to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1": Table1Cascade,
		"table2": Table2Decomposition,
		"table3": Table3Cache,
		"fig1":   Fig1Pipeline,
		"fig2":   Fig2SQLGen,
		"fig3":   Fig3TrainGen,
		"fig4":   Fig4Transform,
		"fig5":   Fig5Challenges,
		"fig6":   Fig6CascadeSweep,
		"fig7":   Fig7Sharing,
	}
}

// IDs lists experiment IDs in presentation order.
func IDs() []string {
	ids := make([]string, 0, len(Registry()))
	for id := range Registry() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		ti, tj := strings.HasPrefix(ids[i], "table"), strings.HasPrefix(ids[j], "table")
		if ti != tj {
			return ti
		}
		return ids[i] < ids[j]
	})
	return ids
}

func pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
