package exper

import (
	"context"
	"errors"
	"testing"
)

// TestTable1CascadeCancellation pins the ctxflow contract on a table
// runner: canceling the context aborts the experiment at the next model
// call and the cancellation surfaces as the returned error.
func TestTable1CascadeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Table1Cascade(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Table1Cascade(canceled ctx) err = %v, want context.Canceled", err)
	}
}

// TestAllRunnersHonorCancellation: every registered experiment — paper
// artifacts and ablations — returns context.Canceled when started with a
// canceled context, rather than running to completion. This is the
// behavioural half of the ctxflow analyzer: no runner may smuggle in a
// fresh context.Background().
func TestAllRunnersHonorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runners := map[string]Runner{}
	for id, r := range Registry() {
		runners[id] = r
	}
	for id, r := range ExtRegistry() {
		runners[id] = r
	}
	for id, run := range runners {
		if _, err := run(ctx); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", id, err)
		}
	}
}
