package exper

import (
	"context"
	"fmt"

	"repro/internal/core/cascade"
	"repro/internal/llm"
	"repro/internal/token"
	"repro/internal/workload"
)

// qaSeed and qaCount mirror the paper's 40-query HotpotQA sample.
const (
	qaSeed  = 3
	qaCount = 40
	// cascadeTau is the confidence threshold of the cascade decision model.
	cascadeTau = 0.62
)

// qaRequest builds the RAG-style prompt for one QA item.
func qaRequest(it workload.QAItem) llm.Request {
	return llm.Request{
		Task:       llm.TaskQA,
		Prompt:     "Context: " + it.ContextFor() + "\nQuestion: " + it.Question + "\nAnswer:",
		Gold:       it.Answer,
		Wrong:      it.Distractor,
		WrongAlts:  []string{"I am not certain."},
		Difficulty: it.Difficulty,
	}
}

// Table1Cascade reproduces Table I: accuracy and API cost of each single
// model versus the LLM cascade on the 40-query QA sample.
func Table1Cascade(ctx context.Context) (Report, error) {
	set := workload.GenQA(qaSeed, qaCount)

	rep := Report{
		ID:      "table1",
		Title:   "LLM cascade on multi-hop QA (paper Table I)",
		Headers: []string{"model", "accuracy", "api cost"},
		Notes: []string{
			fmt.Sprintf("%d QA queries (HotpotQA stand-in), seed %d", qaCount, qaSeed),
			"paper: babbage-002 27.5%, gpt-3.5-turbo ~, gpt-4 92.5%; cascade ≈ gpt-4 accuracy at far lower cost",
		},
	}

	// Single models.
	fam := llm.DefaultFamily()
	for _, m := range fam {
		correct := 0
		var cost token.Cost
		for _, it := range set.Items {
			resp, err := m.Complete(ctx, qaRequest(it))
			if err != nil {
				return rep, err
			}
			if resp.Correct {
				correct++
			}
			cost += resp.Cost
		}
		rep.Rows = append(rep.Rows, []string{m.Name(), pct(correct, qaCount), cost.String()})
	}

	// Cascade.
	models := make([]llm.Model, len(fam))
	for i, m := range fam {
		models[i] = m
	}
	c := cascade.New(cascade.Threshold{Tau: cascadeTau}, models...)
	correct := 0
	var cost token.Cost
	for _, it := range set.Items {
		resp, tr, err := c.Complete(ctx, qaRequest(it))
		if err != nil {
			return rep, err
		}
		if resp.Correct {
			correct++
		}
		cost += tr.TotalCost
	}
	rep.Rows = append(rep.Rows, []string{"LLM cascade", pct(correct, qaCount), cost.String()})
	return rep, nil
}

// Fig6CascadeSweep reproduces Figure 6's mechanism as a measurement: the
// accuracy/cost frontier traced by the cascade's decision threshold, with
// the trained logistic decision model as an extra point.
func Fig6CascadeSweep(ctx context.Context) (Report, error) {
	set := workload.GenQA(qaSeed+1, 200)

	rep := Report{
		ID:      "fig6",
		Title:   "cascade decision-threshold sweep (paper Figure 6 procedure)",
		Headers: []string{"decision", "accuracy", "api cost", "escalations/query"},
		Notes: []string{
			"200 QA queries; threshold 0 degenerates to the small model, 1 to always-escalate",
		},
	}

	run := func(name string, d cascade.Decision) error {
		fam := llm.DefaultFamily()
		models := make([]llm.Model, len(fam))
		for i, m := range fam {
			models[i] = m
		}
		c := cascade.New(d, models...)
		correct, escal := 0, 0
		var cost token.Cost
		for _, it := range set.Items {
			resp, tr, err := c.Complete(ctx, qaRequest(it))
			if err != nil {
				return err
			}
			if resp.Correct {
				correct++
			}
			escal += tr.Escalations()
			cost += tr.TotalCost
		}
		rep.Rows = append(rep.Rows, []string{
			name, pct(correct, len(set.Items)), cost.String(),
			fmt.Sprintf("%.2f", float64(escal)/float64(len(set.Items))),
		})
		return nil
	}

	for _, tau := range []float64{0.0, 0.4, 0.55, 0.62, 0.7, 0.85, 1.01} {
		if err := run(fmt.Sprintf("threshold %.2f", tau), cascade.Threshold{Tau: tau}); err != nil {
			return rep, err
		}
	}

	// Trained decision model, calibrated on a disjoint slice.
	calib := workload.GenQA(qaSeed+2, 150)
	small := llm.DefaultFamily()[0]
	var confs []float64
	var correct []bool
	for _, it := range calib.Items {
		resp, err := small.Complete(ctx, qaRequest(it))
		if err != nil {
			return rep, err
		}
		confs = append(confs, resp.Confidence)
		correct = append(correct, resp.Correct)
	}
	d := cascade.TrainLogistic(confs, correct, 800, 0.8)
	d.MinP = 0.75
	if err := run("trained logistic", d); err != nil {
		return rep, err
	}

	// Economic decision model: escalate when the expected gain of a better
	// answer beats the next tier's price, at two answer valuations.
	nextCost := llm.DefaultFamily()[1].Price().ForTokens(700, 10)
	if err := run("cost-aware ($0.01/answer)", cascade.CostAware{ValueOfCorrect: 10000, NextCallCost: nextCost}); err != nil {
		return rep, err
	}
	if err := run("cost-aware ($1/answer)", cascade.CostAware{ValueOfCorrect: 1000000, NextCallCost: nextCost}); err != nil {
		return rep, err
	}
	return rep, nil
}
