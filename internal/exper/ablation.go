package exper

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core/privacy"
	"repro/internal/core/semcache"
	"repro/internal/embed"
	"repro/internal/vector"
	"repro/internal/workload"
)

// ExtRegistry maps the ablation experiments (DESIGN.md §4) — studies of
// this repository's own design choices, beyond the paper's artifacts.
func ExtRegistry() map[string]Runner {
	return map[string]Runner{
		"ab-index":           AblationIndexes,
		"ab-cache-policy":    AblationCachePolicies,
		"ab-cache-threshold": AblationCacheThreshold,
		"ab-hybrid":          AblationHybridOrders,
		"ab-dp":              AblationDPSweep,
		"chaos":              ChaosResilience,
	}
}

// ExtIDs lists ablation IDs in presentation order.
func ExtIDs() []string {
	return []string{"ab-index", "ab-cache-policy", "ab-cache-threshold", "ab-hybrid", "ab-dp", "chaos"}
}

func randVecs(seed int64, n, dim int) []vector.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]vector.Item, n)
	for i := range items {
		v := make(embed.Vector, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		items[i] = vector.Item{ID: vector.ID(i), Vec: v}
	}
	return items
}

// AblationIndexes compares the four vector indexes on recall@10 against
// the exact flat scan, plus per-vector storage.
func AblationIndexes(ctx context.Context) (Report, error) {
	if err := ctx.Err(); err != nil {
		return Report{ID: "ab-index"}, err
	}
	const n, dim, k, queries = 2000, 64, 10, 40
	items := randVecs(201, n, dim)
	rng := rand.New(rand.NewSource(202))

	flat := vector.NewFlat(dim, vector.L2)
	flat.Add(items...)
	ivf := vector.NewIVF(vector.IVFConfig{Dim: dim, Metric: vector.L2, NList: 32, NProbe: 6, Seed: 1})
	ivf.Add(items...)
	hnsw := vector.NewHNSW(vector.HNSWConfig{Dim: dim, Metric: vector.L2, M: 12, EfSearch: 64, Seed: 1})
	hnsw.Add(items...)
	pq := vector.NewPQ(vector.PQConfig{Dim: dim, M: 8, K: 64, Seed: 1})
	pq.Add(items...)

	recall := func(idx vector.Index) float64 {
		qrng := rand.New(rand.NewSource(rng.Int63()))
		hits, total := 0, 0
		for qi := 0; qi < queries; qi++ {
			q := make(embed.Vector, dim)
			for j := range q {
				q[j] = float32(qrng.NormFloat64())
			}
			truth := flat.Search(q, k)
			approx := idx.Search(q, k)
			in := map[vector.ID]bool{}
			for _, r := range approx {
				in[r.ID] = true
			}
			for _, r := range truth {
				total++
				if in[r.ID] {
					hits++
				}
			}
		}
		return float64(hits) / float64(total)
	}

	rep := Report{
		ID:      "ab-index",
		Title:   "vector index ablation: recall@10 vs storage",
		Headers: []string{"index", "recall@10", "bytes/vector"},
		Notes:   []string{fmt.Sprintf("%d vectors, dim %d, %d queries; ground truth = exact flat scan", n, dim, queries)},
	}
	rep.Rows = append(rep.Rows,
		[]string{"flat (exact)", f3(recall(flat)), fmt.Sprintf("%d", dim*4)},
		[]string{"ivf (nprobe 6/32)", f3(recall(ivf)), fmt.Sprintf("%d", dim*4)},
		[]string{"hnsw (M=12, ef=64)", f3(recall(hnsw)), fmt.Sprintf("%d", dim*4)},
		[]string{fmt.Sprintf("pq (m=8, 64x compressed)"), f3(recall(pq)), fmt.Sprintf("%d", pq.BytesPerVector())},
	)
	return rep, nil
}

// AblationCachePolicies replays a skewed query stream (hot set revisited,
// cold one-offs passing through) against each eviction policy under
// capacity pressure.
func AblationCachePolicies(ctx context.Context) (Report, error) {
	rep := Report{
		ID:      "ab-cache-policy",
		Title:   "cache eviction policy ablation under capacity pressure",
		Headers: []string{"policy", "hit rate", "evictions"},
		Notes:   []string{"capacity 20; stream: 10 hot queries revisited 8x, interleaved with 120 one-off queries"},
	}
	hot := make([]string, 10)
	for i := range hot {
		hot[i] = fmt.Sprintf("recurring analytics question number %d about revenue", i)
	}
	for _, policy := range []semcache.Policy{semcache.LRU, semcache.LFU, semcache.Weighted} {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		c := semcache.New(semcache.Config{
			Embedder: embed.New(embed.DefaultDim), Capacity: 20, Threshold: 0.999, Policy: policy,
		})
		cold := 0
		for round := 0; round < 8; round++ {
			for _, q := range hot {
				if _, ok := c.Lookup(q); !ok {
					c.Put(q, "r", semcache.Original, semcache.Reuse)
				}
			}
			for j := 0; j < 15; j++ {
				q := fmt.Sprintf("one-off exploratory query %d-%d with unique text", round, j)
				cold++
				if _, ok := c.Lookup(q); !ok {
					c.Put(q, "r", semcache.Original, semcache.Augment)
				}
			}
		}
		st := c.Stats()
		rep.Rows = append(rep.Rows, []string{policy.String(), f3(st.HitRate()), fmt.Sprintf("%d", st.Evictions)})
	}
	return rep, nil
}

// AblationCacheThreshold sweeps the semantic-hit similarity threshold and
// measures the hit rate alongside the false-hit rate (hits whose cached
// answer belongs to a different question) — the paper's "appropriate
// similarity threshold ... should be different for various scenarios".
func AblationCacheThreshold(ctx context.Context) (Report, error) {
	rep := Report{
		ID:      "ab-cache-threshold",
		Title:   "semantic cache threshold ablation: hits vs false hits",
		Headers: []string{"threshold", "hit rate", "false-hit rate"},
		Notes: []string{
			"workload: NL2SQL questions; each cached question is probed once by a true paraphrase (different head, same semantics) and once by a near-miss (same shape, different entity)",
		},
	}
	qs := workload.GenNL2SQL(61, 60)
	for _, th := range []float64{0.80, 0.90, 0.95, 0.99} {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		c := semcache.New(semcache.Config{Embedder: embed.New(embed.DefaultDim), Threshold: th})
		probes, hits, falseHits := 0, 0, 0
		for i := 0; i+1 < len(qs); i += 2 {
			a, b := qs[i], qs[i+1]
			c.Put(a.Text, a.GoldSQL, semcache.Original, semcache.Reuse)

			// True paraphrase: swap the question head.
			para := swapHead(a.Text)
			probes++
			if hit, ok := c.Lookup(para); ok {
				hits++
				if hit.Entry.Response != a.GoldSQL {
					falseHits++
				}
			}
			// Near-miss: a different question entirely.
			probes++
			if hit, ok := c.Lookup(b.Text); ok {
				hits++
				if hit.Entry.Response != b.GoldSQL {
					falseHits++
				}
			}
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.2f", th),
			f3(float64(hits) / float64(probes)),
			f3(float64(falseHits) / float64(probes)),
		})
	}
	return rep, nil
}

func swapHead(q string) string {
	const a = "What are the names of stadiums that"
	const b = "Show the names of stadiums that"
	if len(q) >= len(a) && q[:len(a)] == a {
		return b + q[len(a):]
	}
	if len(q) >= len(b) && q[:len(b)] == b {
		return a + q[len(b):]
	}
	return q
}

// AblationHybridOrders compares the vectors scanned by each hybrid
// execution order across predicate selectivities, including the adaptive
// heuristic and the trained order classifier.
func AblationHybridOrders(ctx context.Context) (Report, error) {
	if err := ctx.Err(); err != nil {
		return Report{ID: "ab-hybrid"}, err
	}
	rep := Report{
		ID:      "ab-hybrid",
		Title:   "hybrid search order ablation: vectors scanned by strategy",
		Headers: []string{"selectivity", "attribute-first", "vector-first", "adaptive picked", "learned picked"},
		Notes:   []string{"store of 1000 items, k=10; scanned = vectors scored by the chosen plan"},
	}
	rng := rand.New(rand.NewSource(71))
	store := vector.NewFlat(embed.DefaultDim, vector.Cosine)
	for i := 0; i < 1000; i++ {
		v := make(embed.Vector, embed.DefaultDim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		store.Add(vector.Item{ID: vector.ID(i), Vec: v, Attrs: map[string]string{
			"bucket100": fmt.Sprintf("%d", i%100), // 1% selectivity
			"bucket10":  fmt.Sprintf("%d", i%10),  // 10%
			"bucket2":   fmt.Sprintf("%d", i%2),   // 50%
		}})
	}
	h := vector.NewHybrid(store)

	// Train the learned chooser on a probe workload mixing selectivities.
	learner := vector.NewOrderLearner()
	preds := []struct {
		name string
		sel  float64
		p    vector.Predicate
	}{
		{"0.01", 0.01, vector.AttrEquals("bucket100", "3")},
		{"0.10", 0.10, vector.AttrEquals("bucket10", "3")},
		{"0.50", 0.50, vector.AttrEquals("bucket2", "1")},
	}
	q := make(embed.Vector, embed.DefaultDim)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	for round := 0; round < 10; round++ {
		for _, pc := range preds {
			h.SearchLearned(q, 10, pc.p, learner, true)
		}
	}
	learner.Train(800, 2.0)

	for _, pc := range preds {
		_, stA := h.Search(q, 10, pc.p, vector.AttributeFirst)
		_, stV := h.Search(q, 10, pc.p, vector.VectorFirst)
		_, stAd := h.Search(q, 10, pc.p, vector.Adaptive)
		_, stL := h.SearchLearned(q, 10, pc.p, learner, false)
		rep.Rows = append(rep.Rows, []string{
			pc.name,
			fmt.Sprintf("%d", stA.Scanned),
			fmt.Sprintf("%d", stV.Scanned),
			stAd.Order.String(),
			stL.Order.String(),
		})
	}
	return rep, nil
}

// AblationDPSweep traces the privacy/utility frontier: DP noise multiplier
// vs membership-inference advantage vs model error.
func AblationDPSweep(ctx context.Context) (Report, error) {
	rep := Report{
		ID:      "ab-dp",
		Title:   "differential privacy sweep: attack advantage vs utility",
		Headers: []string{"noise sigma", "MIA advantage", "test MSE"},
		Notes:   []string{"6 member examples, federated training with clipping 0.5; advantage = best TPR-FPR of the loss-threshold attack"},
	}
	qw := workload.GenQueryWorkload(81, 400)
	xs := make([][]float64, len(qw))
	ys := make([]float64, len(qw))
	for i, q := range qw {
		xs[i] = q.Features()
		ys[i] = math.Log1p(q.ExecTimeMS)
	}
	memberX, memberY := xs[:6], ys[:6]
	nonX, nonY := xs[200:300], ys[200:300]

	for _, sigma := range []float64{0, 0.05, 0.15, 0.3, 0.6} {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		m, err := privacy.FedAvg([]privacy.Client{{X: memberX, Y: memberY, LocalEpochs: 5}}, len(xs[0]),
			privacy.FedConfig{Rounds: 60, LR: 0.05, ClipNorm: 0.5, NoiseSigma: sigma, Seed: 7})
		if err != nil {
			return rep, err
		}
		adv, _ := (&privacy.MembershipAttack{Model: m}).Advantage(memberX, memberY, nonX, nonY)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.2f", sigma), f3(adv), f3(m.MSE(nonX, nonY)),
		})
	}
	return rep, nil
}
