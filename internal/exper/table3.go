package exper

import (
	"context"
	"fmt"

	"repro/internal/core/semcache"
	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/token"
	"repro/internal/workload"
)

// CacheMode selects the Table III configuration.
type CacheMode int

const (
	// NoCache calls the LLM for every query occurrence.
	NoCache CacheMode = iota
	// CacheO caches original queries only (paper's Cache(O)).
	CacheO
	// CacheA caches originals and decomposed sub-queries, answering
	// multi-hop items through the chain (paper's Cache(A)).
	CacheA
)

// String implements fmt.Stringer.
func (m CacheMode) String() string {
	switch m {
	case NoCache:
		return "w/o Cache"
	case CacheO:
		return "Cache(O)"
	case CacheA:
		return "Cache(A)"
	default:
		return "unknown"
	}
}

// QAAnswerer answers QA items through an optional semantic cache. It is
// exported (capital-A API via exper) so the examples can demo the cache
// configurations on real query streams.
type QAAnswerer struct {
	Model llm.Model
	KB    *workload.KnowledgeBase
	Mode  CacheMode
	Cache *semcache.Cache

	Calls int
	Cost  token.Cost
}

// NewQAAnswerer builds an answerer for the given mode.
func NewQAAnswerer(m llm.Model, kb *workload.KnowledgeBase, mode CacheMode) *QAAnswerer {
	a := &QAAnswerer{Model: m, KB: kb, Mode: mode}
	if mode != NoCache {
		// A high threshold keeps near-identical sub-questions about
		// different entities ("...the city Lyon?" vs "...the city Riga?")
		// from poisoning each other — the similarity-threshold challenge
		// the paper flags in Section III-C.
		a.Cache = semcache.New(semcache.Config{
			Embedder:  embed.New(embed.DefaultDim),
			Threshold: 0.995,
			Policy:    semcache.Weighted,
		})
	}
	return a
}

// call makes one metered LLM call.
func (a *QAAnswerer) call(ctx context.Context, req llm.Request) (llm.Response, error) {
	resp, err := a.Model.Complete(ctx, req)
	if err != nil {
		return resp, err
	}
	a.Calls++
	a.Cost += resp.Cost
	return resp, nil
}

// Answer answers one item under the configured mode.
func (a *QAAnswerer) Answer(ctx context.Context, it workload.QAItem) (string, error) {
	if a.Cache != nil {
		if hit, ok := a.Cache.Lookup(it.Question); ok {
			return hit.Entry.Response, nil
		}
	}
	var answer string
	if a.Mode == CacheA && len(it.Subs) == 2 {
		ans, err := a.answerChained(ctx, it)
		if err != nil {
			return "", err
		}
		answer = ans
	} else {
		resp, err := a.call(ctx, qaRequest(it))
		if err != nil {
			return "", err
		}
		answer = resp.Text
	}
	if a.Cache != nil {
		a.Cache.Put(it.Question, answer, semcache.Original, semcache.Reuse)
	}
	return answer, nil
}

// answerChained answers a 2-hop item through its sub-question chain,
// caching each sub-answer. A wrong first hop genuinely derails the second
// hop: the follow-up question is built from the wrong entity and graded
// against that entity's true attribute.
func (a *QAAnswerer) answerChained(ctx context.Context, it workload.QAItem) (string, error) {
	sub1 := it.Subs[0]
	a1, err := a.answerSub(ctx, sub1.Question, sub1.Context, sub1.Answer, sub1.Distractor, sub1.Difficulty)
	if err != nil {
		return "", err
	}
	q2 := fmt.Sprintf(it.Sub2Template, a1)
	gold2, distr2, ok := a.KB.ResolveSecondHop(it.Sub2Template, a1)
	if !ok {
		// The first hop produced a non-entity (hedge or hallucination):
		// there is no true answer; the model hedges.
		gold2, distr2 = "I cannot determine that.", "I cannot determine that."
	}
	return a.answerSub(ctx, q2, it.Subs[1].Context, gold2, distr2, it.Subs[1].Difficulty)
}

// answerSub answers one sub-question through the cache.
func (a *QAAnswerer) answerSub(ctx context.Context, question, fact, gold, wrong string, difficulty float64) (string, error) {
	if a.Cache != nil {
		if hit, ok := a.Cache.Lookup(question); ok {
			return hit.Entry.Response, nil
		}
	}
	resp, err := a.call(ctx, llm.Request{
		Task:       llm.TaskQA,
		Prompt:     "Context: " + fact + "\nQuestion: " + question + "\nAnswer:",
		Gold:       gold,
		Wrong:      wrong,
		WrongAlts:  []string{"I am not certain."},
		Difficulty: difficulty,
	})
	if err != nil {
		return "", err
	}
	if a.Cache != nil {
		a.Cache.Put(question, resp.Text, semcache.SubQuery, semcache.Reuse)
	}
	return resp.Text, nil
}

const (
	cacheSeed    = 37
	cacheQueries = 10
	cacheRounds  = 2
)

// Table3Cache reproduces Table III: 10 queries issued twice under no
// cache, original-only caching, and original+sub-query caching.
func Table3Cache(ctx context.Context) (Report, error) {
	set := workload.GenQA(cacheSeed, cacheQueries)
	model := llm.DefaultFamily().ByName(llm.NameMedium)

	rep := Report{
		ID:      "table3",
		Title:   "LLM cache configurations (paper Table III)",
		Headers: []string{"configuration", "accuracy", "api cost", "llm calls", "cache hit rate"},
		Notes: []string{
			fmt.Sprintf("%d QA queries issued %d times each, seed %d, model %s", cacheQueries, cacheRounds, cacheSeed, llm.NameMedium),
			"paper: w/o 77.5%/$1.123, Cache(O) 77.5%/$0.842, Cache(A) 85%/$0.887",
		},
	}

	for _, mode := range []CacheMode{NoCache, CacheO, CacheA} {
		a := NewQAAnswerer(model, set.KB, mode)
		correct, total := 0, 0
		for round := 0; round < cacheRounds; round++ {
			for _, it := range set.Items {
				ans, err := a.Answer(ctx, it)
				if err != nil {
					return rep, err
				}
				total++
				if ans == it.Answer {
					correct++
				}
			}
		}
		hitRate := "n/a"
		if a.Cache != nil {
			hitRate = fmt.Sprintf("%.0f%%", 100*a.Cache.Stats().HitRate())
		}
		rep.Rows = append(rep.Rows, []string{
			mode.String(), pct(correct, total), a.Cost.String(),
			fmt.Sprintf("%d", a.Calls), hitRate,
		})
	}
	return rep, nil
}
