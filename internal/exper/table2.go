package exper

import (
	"context"
	"fmt"

	"repro/internal/core/qopt"
	"repro/internal/core/transform"
	"repro/internal/llm"
	"repro/internal/sqlkit"
	"repro/internal/workload"
)

const (
	nl2sqlSeed  = 38
	nl2sqlCount = 100
)

// nl2sqlModel is the translator tier used by Table II (the paper used
// DAIL-SQL over GPT; the mid tier reproduces its whole-query error rate on
// compound questions).
func nl2sqlModel() *llm.SimModel {
	return llm.DefaultFamily().ByName(llm.NameMedium)
}

// gradeByExecution executes translated SQL and gold SQL, comparing result
// bags — the Spider protocol.
func gradeByExecution(db *sqlkit.DB, res []qopt.Translated, golds map[string]string) (int, error) {
	correct := 0
	for _, r := range res {
		got, err := db.Exec(r.SQL)
		if err != nil {
			continue // non-executable counts as wrong
		}
		want, err := db.Exec(golds[r.Question])
		if err != nil {
			return 0, fmt.Errorf("gold SQL broken for %q: %w", r.Question, err)
		}
		if got.EqualBag(want) {
			correct++
		}
	}
	return correct, nil
}

// Table2Decomposition reproduces Table II: execution accuracy and API cost
// of whole-query translation vs decomposition vs decomposition+combination
// on the Spider-style compound-question batch.
func Table2Decomposition(ctx context.Context) (Report, error) {
	qs := workload.GenNL2SQL(nl2sqlSeed, nl2sqlCount)
	db := workload.ConcertDB(nl2sqlSeed)

	questions := make([]string, len(qs))
	golds := map[string]string{}
	for i, q := range qs {
		questions[i] = q.Text
		golds[q.Text] = q.GoldSQL
	}

	rep := Report{
		ID:      "table2",
		Title:   "query decomposition and combination for NL2SQL (paper Table II)",
		Headers: []string{"strategy", "accuracy", "api cost", "llm calls"},
		Notes: []string{
			fmt.Sprintf("%d Spider-style questions over the concert schema, seed %d; graded by executing SQL", nl2sqlCount, nl2sqlSeed),
			"paper: origin 79%/$0.435, decomposition 91%/$0.289, +combination 91%/$0.129",
		},
	}

	type strat struct {
		name string
		run  func(p *qopt.Planner) ([]qopt.Translated, qopt.BatchStats, error)
	}
	strategies := []strat{
		{"Origin", func(p *qopt.Planner) ([]qopt.Translated, qopt.BatchStats, error) {
			return p.RunOrigin(ctx, questions)
		}},
		{"Decomposition", func(p *qopt.Planner) ([]qopt.Translated, qopt.BatchStats, error) {
			return p.RunDecomposed(ctx, questions)
		}},
		{"Decomposition+Combination", func(p *qopt.Planner) ([]qopt.Translated, qopt.BatchStats, error) {
			return p.RunDecomposedCombined(ctx, questions, 5)
		}},
	}

	for _, s := range strategies {
		p := qopt.NewPlanner(transform.NewTranslator(nl2sqlModel()))
		res, st, err := s.run(p)
		if err != nil {
			return rep, err
		}
		correct, err := gradeByExecution(db, res, golds)
		if err != nil {
			return rep, err
		}
		rep.Rows = append(rep.Rows, []string{
			s.name, pct(correct, len(res)), st.Cost.String(), fmt.Sprintf("%d", st.LLMCalls),
		})
	}
	return rep, nil
}

// Fig7Sharing reproduces Figure 7 as a measurement: how sub-query sharing
// scales with batch size — total vs unique sub-queries, LLM calls saved,
// and the cost relative to whole-query translation.
func Fig7Sharing(ctx context.Context) (Report, error) {
	rep := Report{
		ID:      "fig7",
		Title:   "sub-query sharing across the batch (paper Figure 7)",
		Headers: []string{"batch size", "total subqueries", "unique", "calls saved", "decomp cost", "origin cost"},
		Notes: []string{
			"the paper's Q1-Q5 share sub-queries; sharing grows with batch size because the atom vocabulary is finite",
		},
	}
	for _, n := range []int{5, 10, 20, 40, 80} {
		qs := workload.GenNL2SQL(nl2sqlSeed, n)
		questions := make([]string, len(qs))
		for i, q := range qs {
			questions[i] = q.Text
		}
		pd := qopt.NewPlanner(transform.NewTranslator(nl2sqlModel()))
		_, std, err := pd.RunDecomposed(ctx, questions)
		if err != nil {
			return rep, err
		}
		po := qopt.NewPlanner(transform.NewTranslator(nl2sqlModel()))
		_, sto, err := po.RunOrigin(ctx, questions)
		if err != nil {
			return rep, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", std.TotalSubQueries),
			fmt.Sprintf("%d", std.UniqueSubQueries),
			fmt.Sprintf("%d", std.CallsSaved()),
			std.Cost.String(),
			sto.Cost.String(),
		})
	}
	return rep, nil
}
