package exper

import (
	"testing"
)

func TestReportCSV(t *testing.T) {
	rep := Report{
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"plain", `with "quote", comma`}},
	}
	got := rep.CSV()
	want := "a,b\nplain,\"with \"\"quote\"\", comma\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
