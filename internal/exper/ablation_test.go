package exper

import (
	"context"
	"strconv"
	"testing"
)

func TestAblationIndexes(t *testing.T) {
	rep, err := AblationIndexes(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	flatRecall, _ := strconv.ParseFloat(rep.Rows[0][1], 64)
	if flatRecall != 1 {
		t.Errorf("flat recall = %v, want 1 (it is the ground truth)", flatRecall)
	}
	hnswRecall, _ := strconv.ParseFloat(rep.Rows[2][1], 64)
	pqRecall, _ := strconv.ParseFloat(rep.Rows[3][1], 64)
	if hnswRecall < 0.8 {
		t.Errorf("hnsw recall %v too low", hnswRecall)
	}
	if pqRecall >= hnswRecall {
		t.Errorf("pq (lossy) recall %v should be below hnsw %v", pqRecall, hnswRecall)
	}
	pqBytes, _ := strconv.Atoi(rep.Rows[3][2])
	flatBytes, _ := strconv.Atoi(rep.Rows[0][2])
	if pqBytes*8 > flatBytes {
		t.Errorf("pq not compressed: %d vs %d bytes", pqBytes, flatBytes)
	}
}

func TestAblationCachePolicies(t *testing.T) {
	rep, err := AblationCachePolicies(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	rates := map[string]float64{}
	for _, row := range rep.Rows {
		v, _ := strconv.ParseFloat(row[1], 64)
		rates[row[0]] = v
	}
	// The weighted policy protects reuse-class hot entries from the cold
	// scan; it must beat plain LRU on this stream.
	if rates["weighted"] <= rates["lru"] {
		t.Errorf("weighted %v not above lru %v", rates["weighted"], rates["lru"])
	}
}

func TestAblationCacheThreshold(t *testing.T) {
	rep, err := AblationCacheThreshold(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Hit rate and false-hit rate must both fall as the threshold rises.
	prevHit, prevFalse := 2.0, 2.0
	for _, row := range rep.Rows {
		hit, _ := strconv.ParseFloat(row[1], 64)
		fh, _ := strconv.ParseFloat(row[2], 64)
		if hit > prevHit+1e-9 || fh > prevFalse+1e-9 {
			t.Errorf("rates not monotone at threshold %s: hit %v (prev %v) false %v (prev %v)",
				row[0], hit, prevHit, fh, prevFalse)
		}
		prevHit, prevFalse = hit, fh
	}
	// The loosest threshold must show false hits (the hazard exists); the
	// strictest must not.
	looseFalse, _ := strconv.ParseFloat(rep.Rows[0][2], 64)
	strictFalse, _ := strconv.ParseFloat(rep.Rows[3][2], 64)
	if looseFalse == 0 {
		t.Error("loose threshold produced no false hits; the trade-off is invisible")
	}
	if strictFalse > 0.02 {
		t.Errorf("strict threshold still false-hits at %v", strictFalse)
	}
}

func TestAblationHybridOrders(t *testing.T) {
	rep, err := AblationHybridOrders(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// At 1% selectivity attribute-first scans far less; at 50% it scans
	// more than vector-first.
	a1, _ := strconv.Atoi(rep.Rows[0][1])
	v1, _ := strconv.Atoi(rep.Rows[0][2])
	if a1 >= v1 {
		t.Errorf("at 1%% selectivity attribute-first scanned %d >= vector-first %d", a1, v1)
	}
	a50, _ := strconv.Atoi(rep.Rows[2][1])
	v50, _ := strconv.Atoi(rep.Rows[2][2])
	if a50 <= v50 {
		t.Errorf("at 50%% selectivity attribute-first scanned %d <= vector-first %d", a50, v50)
	}
	// Both adaptive and learned should route extremes correctly.
	if rep.Rows[0][3] != "attribute-first" || rep.Rows[0][4] != "attribute-first" {
		t.Errorf("1%% selectivity routed %s/%s", rep.Rows[0][3], rep.Rows[0][4])
	}
	if rep.Rows[2][3] != "vector-first" || rep.Rows[2][4] != "vector-first" {
		t.Errorf("50%% selectivity routed %s/%s", rep.Rows[2][3], rep.Rows[2][4])
	}
}

func TestAblationDPSweep(t *testing.T) {
	rep, err := AblationDPSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	advClean, _ := strconv.ParseFloat(rep.Rows[0][1], 64)
	advHeavy, _ := strconv.ParseFloat(rep.Rows[len(rep.Rows)-1][1], 64)
	mseClean, _ := strconv.ParseFloat(rep.Rows[0][2], 64)
	mseHeavy, _ := strconv.ParseFloat(rep.Rows[len(rep.Rows)-1][2], 64)
	if advHeavy >= advClean {
		t.Errorf("heavy noise advantage %v not below clean %v", advHeavy, advClean)
	}
	if mseHeavy <= mseClean {
		t.Errorf("heavy noise MSE %v not above clean %v (no utility cost shown)", mseHeavy, mseClean)
	}
}

func TestExtRegistry(t *testing.T) {
	ids := ExtIDs()
	if len(ids) != 6 {
		t.Fatalf("ext ids = %v", ids)
	}
	for _, id := range ids {
		if ExtRegistry()[id] == nil {
			t.Errorf("ext runner %s missing", id)
		}
	}
}
