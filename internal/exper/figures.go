package exper

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core/datagen"
	"repro/internal/core/explore"
	"repro/internal/core/integrate"
	"repro/internal/core/privacy"
	"repro/internal/core/qopt"
	"repro/internal/core/transform"
	"repro/internal/core/validate"
	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/prompt"
	"repro/internal/token"
	"repro/internal/workload"
)

// Fig1Pipeline runs the end-to-end data-management pipeline of Figure 1 —
// generation → transformation → integration → exploration — over one
// scenario and reports a quality metric per stage. The context cancels
// the pipeline between (and inside) stages.
func Fig1Pipeline(ctx context.Context) (Report, error) {
	model := llm.DefaultFamily().ByName(llm.NameLarge)
	rep := Report{
		ID:      "fig1",
		Title:   "end-to-end pipeline: generation -> transformation -> integration -> exploration (paper Figure 1)",
		Headers: []string{"stage", "task", "metric", "value"},
	}

	// Stage 1 — data generation: constraint-satisfying SQL for DBMS testing.
	db := workload.ConcertDB(71)
	gen := datagen.NewGenerator(db, model, 71)
	_, gst, err := gen.Generate(ctx, 30, datagen.Constraints{MustExecute: true, NonEmpty: true})
	if err != nil {
		return rep, err
	}
	rep.Rows = append(rep.Rows, []string{"generation", "SQL generation", "executable", pct(gst.Executable, gst.Requested)})

	// Stage 2 — transformation: semi-structured docs to relational tables.
	docs := workload.GenDocs(72, 12)
	ext := &transform.DirectExtractor{Model: model}
	var accSum float64
	for _, d := range docs {
		tab, _, err := ext.Extract(ctx, d)
		if err != nil {
			return rep, err
		}
		accSum += tab.CellAccuracy(d.Cols, d.Gold)
	}
	rep.Rows = append(rep.Rows, []string{"transformation", "doc -> table", "cell accuracy", f3(accSum / float64(len(docs)))})

	// Stage 3 — integration: entity resolution over the transformed data.
	set := workload.GenCustomers(73, 80, 0, 0.25)
	res := &integrate.Resolver{Model: model, Threshold: 0.5, CompareCols: []string{"name"}, BlockCol: "country"}
	decisions, _, err := res.Resolve(ctx, set.Rows)
	if err != nil {
		return rep, err
	}
	_, _, f1 := integrate.PRF1(decisions, set.DuplicatePairs)
	rep.Rows = append(rep.Rows, []string{"integration", "entity resolution", "F1", f3(f1)})

	// Stage 4 — exploration: semantic search over the multi-modal lake.
	kb := workload.GenKB(74)
	lake := explore.NewLake(embed.New(embed.DefaultDim))
	for _, f := range kb.Facts() {
		lake.AddText("fact", f, nil)
	}
	hits := 0
	for _, p := range kb.People[:10] {
		got := lake.Search("where was "+p.Name+" born", 1)
		if len(got) == 1 && containsFold(got[0].Item.Content, p.Name) {
			hits++
		}
	}
	rep.Rows = append(rep.Rows, []string{"exploration", "lake semantic search", "hit@1", pct(hits, 10)})
	return rep, nil
}

func containsFold(haystack, needle string) bool {
	return len(needle) > 0 && len(haystack) >= len(needle) &&
		(func() bool {
			h, n := []rune(haystack), []rune(needle)
			for i := 0; i+len(n) <= len(h); i++ {
				ok := true
				for j := range n {
					a, b := h[i+j], n[j]
					if a != b && a != b+32 && a != b-32 {
						ok = false
						break
					}
				}
				if ok {
					return true
				}
			}
			return false
		})()
}

// Fig2SQLGen reproduces Figure 2 as a measurement: constraint-aware SQL
// generation quality (executability, non-empty results, diversity) per
// model tier, with and without the constraint-repair loop.
func Fig2SQLGen(ctx context.Context) (Report, error) {
	rep := Report{
		ID:      "fig2",
		Title:   "SQL generation under constraints (paper Figure 2)",
		Headers: []string{"model", "constraints", "executable", "non-empty", "distinct", "llm calls"},
		Notes:   []string{"30 queries per cell (10 simple / 10 multi-join / 10 sub-query)"},
	}
	for _, m := range llm.DefaultFamily() {
		for _, constrained := range []bool{false, true} {
			db := workload.ConcertDB(81)
			g := datagen.NewGenerator(db, m, 81)
			c := datagen.Constraints{MustExecute: constrained, NonEmpty: constrained}
			_, st, err := g.Generate(ctx, 30, c)
			if err != nil {
				return rep, err
			}
			label := "off"
			if constrained {
				label = "on"
			}
			rep.Rows = append(rep.Rows, []string{
				m.Name(), label, pct(st.Executable, st.Requested), pct(st.NonEmpty, st.Requested),
				pct(st.DistinctSQL, st.Requested), fmt.Sprintf("%d", st.LLMCalls),
			})
		}
	}
	return rep, nil
}

// Fig3TrainGen reproduces Figure 3 as a measurement: training-data
// generation quality per model tier — execution-time estimation q-error,
// missing-field imputation accuracy, and synthetic-data marginal fidelity.
func Fig3TrainGen(ctx context.Context) (Report, error) {
	rep := Report{
		ID:      "fig3",
		Title:   "training data generation (paper Figure 3)",
		Headers: []string{"model", "exec-time mean q-error", "imputation accuracy", "synthetic TV distance"},
		Notes:   []string{"250 labeled <query, execution_time> examples, 50 test queries; 200-row customer table with 15% missing"},
	}
	qs := workload.GenQueryWorkload(91, 300)
	cust := workload.GenCustomers(92, 200, 0.15, 0)
	missing := map[int]bool{}
	for _, mc := range cust.MissingCells {
		missing[mc.Row] = true
	}
	var complete []workload.Row
	for i, r := range cust.Rows {
		if !missing[i] {
			complete = append(complete, r)
		}
	}
	deps := map[string]string{"country": "city", "segment": "name", "city": "name"}

	for _, m := range llm.DefaultFamily() {
		est := datagen.NewExecTimeEstimator(m, qs[:250])
		var qe float64
		for _, q := range qs[250:] {
			pred, _, err := est.Estimate(ctx, q)
			if err != nil {
				return rep, err
			}
			qe += datagen.QError(pred, q.ExecTimeMS)
		}
		qe /= float64(len(qs) - 250)

		im := datagen.NewImputer(m, complete, deps)
		right, total := 0, 0
		for _, mc := range cust.MissingCells {
			got, _, err := im.Impute(ctx, cust.Rows[mc.Row], mc.Col)
			if err != nil {
				return rep, err
			}
			total++
			if got == mc.Gold {
				right++
			}
		}

		syn := datagen.NewSynthesizer(m, 93)
		synth, _, err := syn.Generate(ctx, cust.Rows, []string{"city", "country", "segment"}, 200)
		if err != nil {
			return rep, err
		}
		tv := (datagen.TVDistance(cust.Rows, synth, "city") +
			datagen.TVDistance(cust.Rows, synth, "country") +
			datagen.TVDistance(cust.Rows, synth, "segment")) / 3

		rep.Rows = append(rep.Rows, []string{m.Name(), f3(qe), pct(right, total), f3(tv)})
	}
	return rep, nil
}

// Fig4Transform reproduces Figure 4 as a measurement: transforming
// XML/JSON/spreadsheet documents to relational tables, comparing the
// direct per-document approach against one-off operator-program synthesis.
func Fig4Transform(ctx context.Context) (Report, error) {
	rep := Report{
		ID:      "fig4",
		Title:   "semi-structured/spreadsheet to relational tables (paper Figure 4)",
		Headers: []string{"format", "method", "cell accuracy", "llm calls", "api cost"},
		Notes:   []string{"30 documents (10 per format), model " + llm.NameMedium + "; synthesis pays one call per layout and applies for free"},
	}
	docs := workload.GenDocs(95, 30)
	model := llm.DefaultFamily().ByName(llm.NameMedium)

	byFormat := map[string][]workload.Doc{}
	for _, d := range docs {
		byFormat[d.Format] = append(byFormat[d.Format], d)
	}
	for _, format := range []string{"xml", "json", "sheet"} {
		ds := byFormat[format]

		// Direct: one call per document.
		ext := &transform.DirectExtractor{Model: model}
		var acc float64
		var cost token.Cost
		calls := 0
		for _, d := range ds {
			tab, resp, err := ext.Extract(ctx, d)
			if err != nil {
				return rep, err
			}
			acc += tab.CellAccuracy(d.Cols, d.Gold)
			cost += resp.Cost
			calls++
		}
		rep.Rows = append(rep.Rows, []string{
			format, "direct", f3(acc / float64(len(ds))), fmt.Sprintf("%d", calls), cost.String(),
		})

		// Synthesis: one call for the layout, then apply everywhere.
		syn := &transform.Synthesizer{Model: model}
		prog, resp, err := syn.Synthesize(ctx, ds[0])
		if err != nil {
			return rep, err
		}
		acc = 0
		applied := 0
		for _, d := range ds {
			tab, err := prog.Apply(d)
			if err != nil {
				continue
			}
			acc += tab.CellAccuracy(d.Cols, d.Gold)
			applied++
		}
		mean := 0.0
		if applied > 0 {
			mean = acc / float64(len(ds))
		}
		rep.Rows = append(rep.Rows, []string{
			format, "program synthesis", f3(mean), "1", resp.Cost.String(),
		})
	}
	return rep, nil
}

// Fig5Challenges reproduces Figure 5 as an ablation sweep: one measurement
// per challenge axis showing the cost of ignoring it and the benefit of
// the paper's proposed remedy.
func Fig5Challenges(ctx context.Context) (Report, error) {
	rep := Report{
		ID:      "fig5",
		Title:   "challenge/remedy ablations (paper Figure 5)",
		Headers: []string{"challenge", "configuration", "metric", "value"},
	}

	// (1) Prompt optimization: similarity-only vs performance-aware
	// few-shot selection. Examples carry observed rewards; selection
	// quality is the share of known-good examples chosen.
	emb := embed.New(embed.DefaultDim)
	store := prompt.NewStore(emb, 0)
	rng := rand.New(rand.NewSource(101))
	set := workload.GenQA(101, 120)
	for i, it := range set.Items {
		out := it.Answer
		reward := 1.0
		if rng.Float64() < 0.4 { // historical failures stay in the store
			out = it.Distractor
			reward = 0
		}
		id := store.Add(prompt.Example{Input: it.Question, Output: out})
		for k := 0; k < 3; k++ {
			store.Feedback(id, reward)
		}
		_ = i
	}
	probe := workload.GenQA(102, 40)
	goodShare := func(mode prompt.Selection) float64 {
		good := 0.0
		for _, it := range probe.Items {
			sel := store.Select(it.Question, 4, mode)
			for _, s := range sel {
				if s.Example.MeanReward() > 0.5 {
					good++
				}
			}
		}
		return good / float64(len(probe.Items)*4)
	}
	// The UCB bandit (the paper's "RL algorithms" vision) learns the same
	// preference online from its own feedback.
	bandit := prompt.NewBanditSelector(store)
	banditGood := 0.0
	for round := 0; round < 3; round++ { // a few rounds to learn
		for _, it := range probe.Items {
			sel := bandit.Select(it.Question, 4)
			reward := 0.0
			for _, s := range sel {
				if s.Example.MeanReward() > 0.5 {
					reward += 0.25
				}
			}
			bandit.Feedback(sel, reward)
			if round == 2 {
				for _, s := range sel {
					if s.Example.MeanReward() > 0.5 {
						banditGood++
					}
				}
			}
		}
	}
	rep.Rows = append(rep.Rows,
		[]string{"prompt optimization", "similarity-only selection", "good-example share", f3(goodShare(prompt.BySimilarity))},
		[]string{"prompt optimization", "performance-aware selection", "good-example share", f3(goodShare(prompt.ByPerformance))},
		[]string{"prompt optimization", "UCB bandit selection (round 3)", "good-example share", f3(banditGood / float64(len(probe.Items)*4))},
	)

	// (2) Query optimization: whole-query vs decomposed cost on a shared
	// batch.
	qs := workload.GenNL2SQL(nl2sqlSeed, 40)
	questions := make([]string, len(qs))
	for i, q := range qs {
		questions[i] = q.Text
	}
	po := qopt.NewPlanner(transform.NewTranslator(nl2sqlModel()))
	_, sto, err := po.RunOrigin(ctx, questions)
	if err != nil {
		return rep, err
	}
	pd := qopt.NewPlanner(transform.NewTranslator(nl2sqlModel()))
	_, std, err := pd.RunDecomposed(ctx, questions)
	if err != nil {
		return rep, err
	}
	rep.Rows = append(rep.Rows,
		[]string{"query optimization", "origin", "api cost", sto.Cost.String()},
		[]string{"query optimization", "decomposition", "api cost", std.Cost.String()},
	)

	// (3) Cache optimization: hit rate and cost of the cached vs uncached
	// repeated stream.
	cset := workload.GenQA(cacheSeed, cacheQueries)
	model := llm.DefaultFamily().ByName(llm.NameMedium)
	noCache := NewQAAnswerer(model, cset.KB, NoCache)
	cached := NewQAAnswerer(model, cset.KB, CacheA)
	for round := 0; round < cacheRounds; round++ {
		for _, it := range cset.Items {
			if _, err := noCache.Answer(ctx, it); err != nil {
				return rep, err
			}
			if _, err := cached.Answer(ctx, it); err != nil {
				return rep, err
			}
		}
	}
	rep.Rows = append(rep.Rows,
		[]string{"cache optimization", "w/o cache", "api cost", noCache.Cost.String()},
		[]string{"cache optimization", "Cache(A)", "api cost", cached.Cost.String()},
		[]string{"cache optimization", "Cache(A)", "hit rate", f3(cached.Cache.Stats().HitRate())},
	)

	// (4) Security & privacy: membership-inference advantage without and
	// with the DP defense, plus the utility cost.
	qw := workload.GenQueryWorkload(103, 400)
	xs := make([][]float64, len(qw))
	ys := make([]float64, len(qw))
	for i, q := range qw {
		xs[i] = q.Features()
		ys[i] = math.Log1p(q.ExecTimeMS)
	}
	// A member set small enough for the model to near-interpolate: the
	// overfitting gap is the signal the attack exploits.
	memberX, memberY := xs[:6], ys[:6]
	nonX, nonY := xs[200:300], ys[200:300]
	over := privacy.NewLinearModel(len(xs[0]))
	over.SGD(rand.New(rand.NewSource(104)), memberX, memberY, 0.05, 3000)
	advPlain, _ := (&privacy.MembershipAttack{Model: over}).Advantage(memberX, memberY, nonX, nonY)
	defended, err := privacy.FedAvg([]privacy.Client{{X: memberX, Y: memberY, LocalEpochs: 3}}, len(xs[0]),
		privacy.FedConfig{Rounds: 40, LR: 0.05, ClipNorm: 0.5, NoiseSigma: 0.3, Seed: 105})
	if err != nil {
		return rep, err
	}
	advDP, _ := (&privacy.MembershipAttack{Model: defended}).Advantage(memberX, memberY, nonX, nonY)
	rep.Rows = append(rep.Rows,
		[]string{"security & privacy", "undefended training", "MIA advantage", f3(advPlain)},
		[]string{"security & privacy", "undefended training", "test MSE", f3(over.MSE(nonX, nonY))},
		[]string{"security & privacy", "DP federated training", "MIA advantage", f3(advDP)},
		[]string{"security & privacy", "DP federated training", "test MSE", f3(defended.MSE(nonX, nonY))},
	)

	// (5) Output validation: raw accuracy vs accuracy among answers
	// accepted by self-consistency voting.
	vset := workload.GenQA(106, 120)
	var rawOK, accOK, accN int
	for _, it := range vset.Items {
		res, err := validate.SelfConsistency(ctx, model, llm.Request{
			Task: llm.TaskQA, Prompt: "Context: " + it.ContextFor() + "\nQ: " + it.Question,
			Gold: it.Answer, Wrong: it.Distractor,
			WrongAlts:  []string{"I am not certain.", "The context does not say."},
			Difficulty: it.Difficulty,
		}, 5)
		if err != nil {
			return rep, err
		}
		if res.Answer == it.Answer {
			rawOK++
		}
		if res.Agreement >= 0.8 {
			accN++
			if res.Answer == it.Answer {
				accOK++
			}
		}
	}
	rep.Rows = append(rep.Rows,
		[]string{"output validation", "accept everything", "accuracy", pct(rawOK, len(vset.Items))},
		[]string{"output validation", "self-consistency >= 0.8", "accuracy", pct(accOK, accN)},
		[]string{"output validation", "self-consistency >= 0.8", "coverage", pct(accN, len(vset.Items))},
	)
	return rep, nil
}
