package exper

import (
	"context"
	"strconv"
	"testing"
)

func TestChaosResilience(t *testing.T) {
	rep, err := ChaosResilience(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		bare, _ := strconv.ParseFloat(row[1], 64)
		res, _ := strconv.ParseFloat(row[2], 64)
		if res < bare {
			t.Errorf("rate %s: resilient availability %v below bare %v", row[0], res, bare)
		}
		// The acceptance bar: the resilience stack holds >= 99% availability
		// at every injected failure rate.
		if res < 0.99 {
			t.Errorf("rate %s: resilient availability %v < 0.99", row[0], res)
		}
		if row[5] != "ok" {
			t.Errorf("rate %s: spend accounting %q — proxy spend diverged from the model meters", row[0], row[5])
		}
	}
	// With no injected failures both stacks serve everything.
	if first, _ := strconv.ParseFloat(rep.Rows[0][1], 64); first != 1 {
		t.Errorf("bare availability at 0%% = %v, want 1", first)
	}
	// At the highest failure rate the bare stack visibly degrades — that
	// contrast is the point of the experiment.
	if bare, _ := strconv.ParseFloat(rep.Rows[3][1], 64); bare > 0.9 {
		t.Errorf("bare availability at 50%% = %v; expected visible degradation", bare)
	}
}
