package embed

import (
	"math"
	"math/rand"
	"testing"
)

func randVec(r *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	return v
}

// refDot is the straightforward sequential float64 reference.
func refDot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

func refSqL2(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// Lengths chosen to hit every code path: below archMinLen, odd tails,
// exact multiples of the 8- and 32-wide strides.
var kernelLens = []int{0, 1, 3, 7, 8, 15, 16, 17, 31, 32, 33, 64, 100, 128, 256, 300}

func TestDotKernelMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range kernelLens {
		a, b := randVec(r, n), randVec(r, n)
		got := dotF32(a, b)
		want := refDot(a, b)
		tol := 1e-4 * (1 + math.Abs(want))
		if math.Abs(got-want) > tol {
			t.Errorf("dotF32 len=%d: got %v, want %v", n, got, want)
		}
	}
}

func TestSqL2KernelMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range kernelLens {
		a, b := randVec(r, n), randVec(r, n)
		got := sqL2F32(a, b)
		want := refSqL2(a, b)
		tol := 1e-4 * (1 + math.Abs(want))
		if math.Abs(got-want) > tol {
			t.Errorf("sqL2F32 len=%d: got %v, want %v", n, got, want)
		}
	}
}

func TestDotNormMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range kernelLens {
		a, b := randVec(r, n), randVec(r, n)
		dot, na, nb := dotNormF32(a, b)
		for _, c := range []struct {
			name      string
			got, want float64
		}{
			{"dot", dot, refDot(a, b)},
			{"na", na, refDot(a, a)},
			{"nb", nb, refDot(b, b)},
		} {
			tol := 1e-4 * (1 + math.Abs(c.want))
			if math.Abs(c.got-c.want) > tol {
				t.Errorf("dotNormF32 len=%d %s: got %v, want %v", n, c.name, c.got, c.want)
			}
		}
	}
}

// TestDotInt8Exact: integer accumulation has no rounding, so the SIMD and
// generic paths must agree exactly with the reference.
func TestDotInt8Exact(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, n := range kernelLens {
		a := make([]int8, n)
		b := make([]int8, n)
		for i := range a {
			a[i] = int8(r.Intn(256) - 128)
			b[i] = int8(r.Intn(256) - 128)
		}
		var want int32
		for i := range a {
			want += int32(a[i]) * int32(b[i])
		}
		if got := DotInt8(a, b); got != want {
			t.Errorf("DotInt8 len=%d: got %d, want %d", n, got, want)
		}
		if got := dotInt8Generic(a, b); got != want {
			t.Errorf("dotInt8Generic len=%d: got %d, want %d", n, got, want)
		}
	}
}

func TestDotInt8ExtremesNoOverflow(t *testing.T) {
	// Worst case per pair is (-128)*(-128); 2048 dims stays far from
	// int32 overflow and must be exact.
	n := 2048
	a := make([]int8, n)
	b := make([]int8, n)
	for i := range a {
		a[i], b[i] = -128, -128
	}
	want := int32(n) * 128 * 128
	if got := DotInt8(a, b); got != want {
		t.Errorf("DotInt8 extremes: got %d, want %d", got, want)
	}
}

func TestKernelLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"dotF32":   func() { dotF32([]float32{1}, []float32{1, 2}) },
		"sqL2F32":  func() { sqL2F32([]float32{1}, []float32{1, 2}) },
		"DotInt8":  func() { DotInt8([]int8{1}, []int8{1, 2}) },
		"Quantize": func() { QuantizeInto(make([]int8, 3), Vector{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestQuantizeIntoBounds(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 7, 64, 128, 300} {
		v := Vector(randVec(r, n))
		code := make([]int8, n)
		scale := QuantizeInto(code, v)
		if scale < 0 {
			t.Fatalf("negative scale %v", scale)
		}
		var maxAbs float64
		for _, x := range v {
			maxAbs = math.Max(maxAbs, math.Abs(float64(x)))
		}
		// Documented bound: per component |v[i] - code[i]*scale| <= scale/2.
		for i := range v {
			err := math.Abs(float64(v[i]) - float64(code[i])*float64(scale))
			if err > float64(scale)/2+1e-7 {
				t.Errorf("len=%d component %d: error %v exceeds scale/2 = %v",
					n, i, err, scale/2)
			}
		}
		// Extremes map to ±127.
		for i := range v {
			if math.Abs(float64(v[i])) == maxAbs && maxAbs > 0 {
				if code[i] != 127 && code[i] != -127 {
					t.Errorf("max-magnitude component quantized to %d", code[i])
				}
			}
		}
	}
}

func TestQuantizeZeroVector(t *testing.T) {
	code := []int8{5, -5, 5}
	if scale := QuantizeInto(code, Vector{0, 0, 0}); scale != 0 {
		t.Errorf("zero vector scale = %v, want 0", scale)
	}
	for i, c := range code {
		if c != 0 {
			t.Errorf("code[%d] = %d, want 0", i, c)
		}
	}
}

// TestQuantizedDotApproximatesExact checks the bound the quantized
// prefilter relies on: for unit-norm embeddings the int8 dot recovers the
// float dot to well under the rescore margin.
func TestQuantizedDotApproximatesExact(t *testing.T) {
	e := New(DefaultDim)
	texts := []string{
		"what are the names of stadiums that had concerts",
		"show stadium names with concerts in 2014",
		"predict execution time of analytical join queries",
		"cache the generated answer for similar prompts",
	}
	q := e.Text("stadium concert names")
	qc := make([]int8, e.dim)
	qs := QuantizeInto(qc, q)
	for _, s := range texts {
		v := e.Text(s)
		vc := make([]int8, e.dim)
		vs := QuantizeInto(vc, v)
		exact := Dot(q, v)
		approx := float64(DotInt8(qc, vc)) * float64(qs) * float64(vs)
		if math.Abs(exact-approx) > 0.05 {
			t.Errorf("quantized dot %v vs exact %v for %q", approx, exact, s)
		}
	}
}

func BenchmarkDotF32(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	x, y := randVec(r, DefaultDim), randVec(r, DefaultDim)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkF64 = dotF32(x, y)
	}
}

func BenchmarkDotGeneric(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	x, y := randVec(r, DefaultDim), randVec(r, DefaultDim)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkF64 = dotGeneric(x, y)
	}
}

func BenchmarkDotInt8(b *testing.B) {
	x := make([]int8, DefaultDim)
	y := make([]int8, DefaultDim)
	for i := range x {
		x[i], y[i] = int8(i), int8(-i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkI32 = DotInt8(x, y)
	}
}

var (
	sinkF64 float64
	sinkI32 int32
)
