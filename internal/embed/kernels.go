// Distance kernels: the innermost loops of every vector scan in the
// repository (flat search, IVF cells, PQ codebooks, HNSW beams, cosine
// similarity on the semantic-cache path).
//
// Three layers:
//
//   - exported helpers (Dot, SqL2, DotInt8, QuantizeInto) with the package's
//     length-guard semantics;
//   - portable 4-wide unrolled implementations (dotGeneric & co) that break
//     the floating-point dependency chain so the scalar path pipelines;
//   - an amd64 AVX2+FMA fast path (kernels_amd64.s), selected at startup by
//     CPUID feature detection, with the generic code as fallback and tail
//     handler.
//
// Accumulation is float32 lanes combined in float64 — results can differ
// from a sequential float64 loop in the last few ulps, which every consumer
// (similarity thresholds, top-k ordering with ID tie-breaks) tolerates by
// construction. See DESIGN.md "Kernel architecture".
package embed

// dotF32 returns the inner product of equal-length a and b.
func dotF32(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("embed: kernel length mismatch")
	}
	if s, ok := dotArch(a, b); ok {
		return s
	}
	return dotGeneric(a, b)
}

// sqL2F32 returns the squared Euclidean distance of equal-length a and b.
func sqL2F32(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("embed: kernel length mismatch")
	}
	if s, ok := sqL2Arch(a, b); ok {
		return s
	}
	return sqL2Generic(a, b)
}

// dotNormF32 returns (a·b, a·a, b·b) in one pass over equal-length a and b.
func dotNormF32(a, b []float32) (dot, na, nb float64) {
	var d0, d1, a0, a1, b0, b1 float32
	i := 0
	for ; i+2 <= len(a); i += 2 {
		x0, x1 := a[i], a[i+1]
		y0, y1 := b[i], b[i+1]
		d0 += x0 * y0
		d1 += x1 * y1
		a0 += x0 * x0
		a1 += x1 * x1
		b0 += y0 * y0
		b1 += y1 * y1
	}
	if i < len(a) {
		x, y := a[i], b[i]
		d0 += x * y
		a0 += x * x
		b0 += y * y
	}
	return float64(d0) + float64(d1), float64(a0) + float64(a1), float64(b0) + float64(b1)
}

// dotGeneric is the portable unrolled dot product: four independent
// accumulators hide the FP add latency the naive loop serializes on.
func dotGeneric(a, b []float32) float64 {
	var s0, s1, s2, s3 float32
	i := 0
	if len(a) == len(b) { // help bounds-check elimination
		for ; i+4 <= len(a); i += 4 {
			s0 += a[i] * b[i]
			s1 += a[i+1] * b[i+1]
			s2 += a[i+2] * b[i+2]
			s3 += a[i+3] * b[i+3]
		}
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return float64(s0+s2) + float64(s1+s3)
}

// sqL2Generic is the portable unrolled squared-L2 kernel.
func sqL2Generic(a, b []float32) float64 {
	var s0, s1, s2, s3 float32
	i := 0
	if len(a) == len(b) {
		for ; i+4 <= len(a); i += 4 {
			d0 := a[i] - b[i]
			d1 := a[i+1] - b[i+1]
			d2 := a[i+2] - b[i+2]
			d3 := a[i+3] - b[i+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return float64(s0+s2) + float64(s1+s3)
}

// DotInt8 returns the integer inner product of equal-length int8 vectors.
// Accumulation is exact in int32: |sum| <= len * 127 * 127, safe for any
// dimensionality this repository uses (overflow needs len > 133,000).
func DotInt8(a, b []int8) int32 {
	if len(a) != len(b) {
		panic("embed: kernel length mismatch")
	}
	if s, ok := dotInt8Arch(a, b); ok {
		return s
	}
	return dotInt8Generic(a, b)
}

func dotInt8Generic(a, b []int8) int32 {
	var s0, s1, s2, s3 int32
	i := 0
	if len(a) == len(b) {
		for ; i+4 <= len(a); i += 4 {
			s0 += int32(a[i]) * int32(b[i])
			s1 += int32(a[i+1]) * int32(b[i+1])
			s2 += int32(a[i+2]) * int32(b[i+2])
			s3 += int32(a[i+3]) * int32(b[i+3])
		}
	}
	for ; i < len(a); i++ {
		s0 += int32(a[i]) * int32(b[i])
	}
	return s0 + s1 + s2 + s3
}

// QuantizeInto symmetrically int8-quantizes v into code (len(v) entries),
// returning the scale such that float32(code[i])*scale ≈ v[i]. The zero
// vector quantizes to all-zero codes with scale 0.
//
// Error bound: per component |v[i] - code[i]*scale| <= scale/2 =
// max|v|/254, so for unit-norm embeddings an approximate dot product is
// within ~dim * (max|a| * max|b|) / 254 of exact — in practice well under
// 1e-2 for the hashed 128-dim embeddings, which is why the quantized scan
// is used as a prefilter with exact rescoring, never as the final score.
func QuantizeInto(code []int8, v Vector) (scale float32) {
	if len(code) != len(v) {
		panic("embed: quantize length mismatch")
	}
	var maxAbs float32
	for _, x := range v {
		if x < 0 {
			x = -x
		}
		if x > maxAbs {
			maxAbs = x
		}
	}
	if maxAbs == 0 {
		for i := range code {
			code[i] = 0
		}
		return 0
	}
	inv := 127 / maxAbs
	for i, x := range v {
		q := x * inv
		if q >= 0 {
			code[i] = int8(q + 0.5)
		} else {
			code[i] = int8(q - 0.5)
		}
	}
	return maxAbs / 127
}
