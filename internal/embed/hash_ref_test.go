package embed

import (
	"hash/fnv"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/token"
)

// Reference implementation of the original (allocating) feature hasher:
// materialize each feature key as a string and hash it with hash/fnv. The
// streaming embedder must produce bit-identical vectors, or every persisted
// embedding and recorded benchmark corpus silently changes meaning.

func refAdd(v Vector, key string, w float32) {
	h := fnv.New64a()
	h.Write([]byte(key))
	addHash(v, h.Sum64(), w)
}

func refText(e *Embedder, s string) Vector {
	v := make(Vector, e.dim)
	for _, t := range token.Tokenize(s) {
		refAdd(v, "w:"+t, 1)
	}
	norm := strings.ToLower(strings.Join(strings.Fields(s), " "))
	runes := []rune(norm)
	for i := 0; i+3 <= len(runes); i++ {
		refAdd(v, "g:"+string(runes[i:i+3]), 0.5)
	}
	normalize(v)
	return v
}

func refRow(e *Embedder, cols, vals []string) Vector {
	v := make(Vector, e.dim)
	for i, c := range cols {
		refAdd(v, "c:"+strings.ToLower(c), 0.75)
		if i < len(vals) {
			for _, t := range token.Tokenize(vals[i]) {
				refAdd(v, "v:"+strings.ToLower(c)+"="+t, 1)
				refAdd(v, "w:"+t, 0.5)
			}
		}
	}
	normalize(v)
	return v
}

func refColumn(e *Embedder, name string, sample []string) Vector {
	v := make(Vector, e.dim)
	refAdd(v, "c:"+strings.ToLower(name), 2)
	for _, s := range sample {
		for _, t := range token.Tokenize(s) {
			refAdd(v, "w:"+t, 1)
		}
	}
	normalize(v)
	return v
}

func refImage(e *Embedder, caption string, features []float64) Vector {
	v := make(Vector, e.dim)
	for _, t := range token.Tokenize(caption) {
		refAdd(v, "w:"+t, 1)
	}
	for i, f := range features {
		refAdd(v, "f:"+strconv.Itoa(i), float32(f))
	}
	normalize(v)
	return v
}

func vecsEqual(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTextMatchesReferenceHasher(t *testing.T) {
	e := New(DefaultDim)
	cases := []string{
		"",
		"hello",
		"Show the names of stadiums that had concerts in 2014?",
		"  leading and   interior \t runs\nof whitespace  ",
		"日本語のテスト text with ünïcode and ÀÉÎ CASE",
		"punct,u.a;tion!everywhere(here)",
		"internationalization antidisestablishmentarianism",
		"a",
		"ab",
		"abc",
		" a b ",
	}
	for _, s := range cases {
		if got, want := e.Text(s), refText(e, s); !vecsEqual(got, want) {
			t.Errorf("Text(%q) diverges from reference hasher", s)
		}
	}
	f := func(s string) bool { return vecsEqual(e.Text(s), refText(e, s)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowMatchesReferenceHasher(t *testing.T) {
	e := New(DefaultDim)
	got := e.Row([]string{"Name", "City"}, []string{"Anfield Road", "Liverpool"})
	want := refRow(e, []string{"Name", "City"}, []string{"Anfield Road", "Liverpool"})
	if !vecsEqual(got, want) {
		t.Error("Row diverges from reference hasher")
	}
	// More columns than values.
	got = e.Row([]string{"a", "b", "c"}, []string{"x"})
	want = refRow(e, []string{"a", "b", "c"}, []string{"x"})
	if !vecsEqual(got, want) {
		t.Error("Row with missing values diverges from reference hasher")
	}
}

func TestColumnMatchesReferenceHasher(t *testing.T) {
	e := New(DefaultDim)
	got := e.Column("Country", []string{"USA", "UK", "France"})
	want := refColumn(e, "Country", []string{"USA", "UK", "France"})
	if !vecsEqual(got, want) {
		t.Error("Column diverges from reference hasher")
	}
}

func TestImageMatchesReferenceHasher(t *testing.T) {
	e := New(DefaultDim)
	feats := []float64{0.25, -0.5, 0.75, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	got := e.Image("chest x-ray of patient", feats)
	want := refImage(e, "chest x-ray of patient", feats)
	if !vecsEqual(got, want) {
		t.Error("Image diverges from reference hasher")
	}
}
