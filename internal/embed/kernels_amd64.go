package embed

// AVX2+FMA dispatch for the distance kernels. Feature detection runs once
// at startup via CPUID/XGETBV (kernels_amd64.s); on CPUs without AVX2+FMA
// — or when the OS does not save YMM state — every kernel falls back to
// the portable generic code.

//go:noescape
func cpuidAsm(leaf, sub uint32) (ax, bx, cx, dx uint32)

//go:noescape
func xgetbvAsm() (ax, dx uint32)

//go:noescape
func dotAVX2(a, b *float32, n int) float32

//go:noescape
func sqL2AVX2(a, b *float32, n int) float32

//go:noescape
func dotInt8AVX2(a, b *int8, n int) int32

var useAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, cx, _ := cpuidAsm(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if cx&fma == 0 || cx&osxsave == 0 || cx&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX): the OS saves YMM state on context
	// switch. Without this, executing VEX-encoded code faults.
	if ax, _ := xgetbvAsm(); ax&6 != 6 {
		return false
	}
	_, bx, _, _ := cpuidAsm(7, 0)
	const avx2 = 1 << 5
	return bx&avx2 != 0
}

// archMinLen is the vector length below which the SIMD call overhead
// exceeds its win and the generic kernel is used instead.
const archMinLen = 16

func dotArch(a, b []float32) (float64, bool) {
	if !useAVX2 || len(a) < archMinLen {
		return 0, false
	}
	n := len(a) &^ 7
	s := float64(dotAVX2(&a[0], &b[0], n))
	for i := n; i < len(a); i++ {
		s += float64(a[i] * b[i])
	}
	return s, true
}

func sqL2Arch(a, b []float32) (float64, bool) {
	if !useAVX2 || len(a) < archMinLen {
		return 0, false
	}
	n := len(a) &^ 7
	s := float64(sqL2AVX2(&a[0], &b[0], n))
	for i := n; i < len(a); i++ {
		d := a[i] - b[i]
		s += float64(d * d)
	}
	return s, true
}

func dotInt8Arch(a, b []int8) (int32, bool) {
	if !useAVX2 || len(a) < archMinLen {
		return 0, false
	}
	n := len(a) &^ 15
	s := dotInt8AVX2(&a[0], &b[0], n)
	for i := n; i < len(a); i++ {
		s += int32(a[i]) * int32(b[i])
	}
	return s, true
}
