// Package embed produces deterministic vector embeddings for text, tabular
// and image-descriptor data.
//
// The embedder is a hashed bag-of-n-grams model: every word token and every
// character trigram of the input is hashed into a fixed-dimensional vector
// with a signed FNV hash, and the result is L2-normalized. This is the
// classic "hashing trick" feature map; it is deterministic, allocation-light
// and — crucially for this reproduction — semantically meaningful enough that
// similar queries land near each other, which is what the paper's prompt
// store (III-A), semantic cache (III-C) and multi-modal data lake (II-D)
// all rely on.
//
// The hot path is allocation-free: features are hashed incrementally
// (FNV-1a folded byte by byte) straight off the tokenizer's streaming scan,
// so no "w:"+token strings, token slices or hash objects are materialized.
// TextScratch embeds into a per-Embedder pooled buffer for callers (the
// semantic-cache lookup path) that only need the vector transiently.
package embed

import (
	"math"
	"sync"
	"unicode"
	"unicode/utf8"

	"repro/internal/token"
)

// DefaultDim is the embedding dimensionality used across the repository when
// callers do not request a specific size.
const DefaultDim = 128

// Vector is a dense embedding.
type Vector []float32

// Embedder maps data of several modalities into one shared vector space.
// Embedder is safe for concurrent use.
type Embedder struct {
	dim int
	tok token.Tokenizer
	// scratch pools dim-sized vectors for TextScratch/ReleaseScratch, the
	// zero-steady-state-alloc embedding path used by per-request lookups.
	scratch sync.Pool
}

// New returns an Embedder producing vectors of the given dimensionality.
// It panics if dim <= 0, since a zero-dimensional space is always a bug.
func New(dim int) *Embedder {
	if dim <= 0 {
		panic("embed: non-positive dimension")
	}
	e := &Embedder{dim: dim}
	e.scratch.New = func() any {
		v := make(Vector, dim)
		return &v
	}
	return e
}

// Dim reports the embedding dimensionality.
func (e *Embedder) Dim() int { return e.dim }

// FNV-1a, folded incrementally so feature keys are hashed without being
// materialized as strings. Matches hash/fnv's 64-bit variant bit for bit.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvBytes(h uint64, p []byte) uint64 {
	for _, b := range p {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// fnvRune folds the UTF-8 encoding of r, matching fnvString(h, string(r)).
func fnvRune(h uint64, r rune) uint64 {
	if uint32(r) < utf8.RuneSelf {
		return fnvByte(h, byte(r))
	}
	var buf [utf8.UTFMax]byte
	n := utf8.EncodeRune(buf[:], r)
	for i := 0; i < n; i++ {
		h = fnvByte(h, buf[i])
	}
	return h
}

// fnvLower folds the lowercased runes of s, matching
// fnvString(h, strings.ToLower(s)) for the 1:1 case mappings unicode
// defines.
func fnvLower(h uint64, s string) uint64 {
	for _, r := range s {
		if 'A' <= r && r <= 'Z' {
			h = fnvByte(h, byte(r+'a'-'A'))
			continue
		}
		if r < utf8.RuneSelf {
			h = fnvByte(h, byte(r))
			continue
		}
		h = fnvRune(h, unicode.ToLower(r))
	}
	return h
}

// prefix hash states, precomputed once: fnv("w:"), fnv("g:"), ...
var (
	hashW = fnvByte(fnvByte(fnvOffset64, 'w'), ':')
	hashG = fnvByte(fnvByte(fnvOffset64, 'g'), ':')
	hashC = fnvByte(fnvByte(fnvOffset64, 'c'), ':')
	hashV = fnvByte(fnvByte(fnvOffset64, 'v'), ':')
	hashF = fnvByte(fnvByte(fnvOffset64, 'f'), ':')
)

// addHash folds a finished feature hash into v at a hashed position with a
// hashed sign — the tail of the classic hashing trick.
func addHash(v Vector, sum uint64, w float32) {
	idx := int(sum % uint64(len(v)))
	if (sum>>63)&1 == 1 {
		w = -w
	}
	v[idx] += w
}

// Text embeds a natural-language string.
func (e *Embedder) Text(s string) Vector {
	v := make(Vector, e.dim)
	e.textInto(v, s)
	normalize(v)
	return v
}

// TextInto embeds s into dst, reusing dst's backing array when it is
// dim-sized, and returns the embedding. Callers that hold a reusable
// buffer embed without allocating.
func (e *Embedder) TextInto(dst Vector, s string) Vector {
	if cap(dst) >= e.dim {
		dst = dst[:e.dim]
		for i := range dst {
			dst[i] = 0
		}
	} else {
		dst = make(Vector, e.dim)
	}
	e.textInto(dst, s)
	normalize(dst)
	return dst
}

// TextScratch embeds s into a vector drawn from the Embedder's scratch
// pool. The caller must hand the same pointer back via ReleaseScratch once
// done (and must not retain the vector after that); lookups that embed,
// search and discard run with zero steady-state allocations. The pointer —
// rather than the Vector itself — round-trips through the pool so the
// slice header is never re-boxed.
func (e *Embedder) TextScratch(s string) *Vector {
	vp := e.scratch.Get().(*Vector)
	v := *vp
	for i := range v {
		v[i] = 0
	}
	e.textInto(v, s)
	normalize(v)
	return vp
}

// ReleaseScratch returns a TextScratch vector to the pool. Pointers not
// minted by TextScratch (wrong length) are dropped, not pooled.
func (e *Embedder) ReleaseScratch(vp *Vector) {
	if vp == nil || len(*vp) != e.dim {
		return
	}
	e.scratch.Put(vp)
}

// textInto accumulates the un-normalized text features of s into v.
func (e *Embedder) textInto(v Vector, s string) {
	e.tok.Each(s, func(piece []byte) {
		addHash(v, fnvBytes(hashW, piece), 1)
	})
	hashTrigrams(v, s, 0.5)
}

// Row embeds one table row given its column names and stringified values.
// The attribute names are folded in so that rows from tables with the same
// values but different schemas do not collapse to one point.
func (e *Embedder) Row(cols, vals []string) Vector {
	v := make(Vector, e.dim)
	for i, c := range cols {
		addHash(v, fnvLower(hashC, c), 0.75)
		if i < len(vals) {
			// Per-column value prefix "v:<col>=", folded once per column.
			hv := fnvByte(fnvLower(hashV, c), '=')
			e.tok.Each(vals[i], func(piece []byte) {
				addHash(v, fnvBytes(hv, piece), 1)
				addHash(v, fnvBytes(hashW, piece), 0.5)
			})
		}
	}
	normalize(v)
	return v
}

// Column embeds a table column given its name and a sample of values.
func (e *Embedder) Column(name string, sample []string) Vector {
	v := make(Vector, e.dim)
	addHash(v, fnvLower(hashC, name), 2)
	for _, s := range sample {
		e.tok.Each(s, func(piece []byte) {
			addHash(v, fnvBytes(hashW, piece), 1)
		})
	}
	normalize(v)
	return v
}

// Image embeds an image stand-in. Offline reproduction has no pixel data, so
// images are represented by caption text plus a compact feature descriptor
// (e.g. dominant colors, detected object tags); both contribute to the
// embedding so that caption-similar and feature-similar images are close.
func (e *Embedder) Image(caption string, features []float64) Vector {
	v := make(Vector, e.dim)
	e.tok.Each(caption, func(piece []byte) {
		addHash(v, fnvBytes(hashW, piece), 1)
	})
	var digits [20]byte
	for i, f := range features {
		addHash(v, fnvBytes(hashF, appendInt(digits[:0], i)), float32(f))
	}
	normalize(v)
	return v
}

// appendInt formats a non-negative int without strconv's allocation,
// matching strconv.Itoa's output.
func appendInt(dst []byte, n int) []byte {
	if n < 0 {
		dst = append(dst, '-')
		n = -n
	}
	if n >= 10 {
		dst = appendInt(dst, n/10)
	}
	return append(dst, byte('0'+n%10))
}

// hashTrigrams folds the character trigrams of s into v: lowercased, with
// whitespace runs collapsed to single spaces and the ends trimmed,
// streamed through a rolling 3-rune window instead of materializing the
// normalized string or the trigrams.
func hashTrigrams(v Vector, s string, w float32) {
	var r0, r1, r2 rune // rolling window, r2 newest
	n := 0              // runes seen (saturates at 3)
	started := false    // a non-space rune has been seen
	pending := false    // a space run is waiting to be collapsed
	for _, r := range s {
		if unicode.IsSpace(r) {
			pending = pending || started
			continue
		}
		if pending {
			pending = false
			r0, r1, r2 = r1, r2, ' '
			if n < 3 {
				n++
			}
			if n == 3 {
				addHash(v, fnvRune(fnvRune(fnvRune(hashG, r0), r1), r2), w)
			}
		}
		if 'A' <= r && r <= 'Z' {
			r += 'a' - 'A'
		} else if r >= utf8.RuneSelf {
			r = unicode.ToLower(r)
		}
		r0, r1, r2 = r1, r2, r
		if n < 3 {
			n++
		}
		if n == 3 {
			addHash(v, fnvRune(fnvRune(fnvRune(hashG, r0), r1), r2), w)
		}
		started = true
	}
}

// Cosine returns the cosine similarity of two vectors of equal length.
// Because Embedder output is L2-normalized, this equals the dot product for
// embedder-produced vectors, but Cosine stays correct for raw vectors too.
//
// Vectors of different lengths live in different embedding spaces; their
// similarity is defined as 0 (rather than panicking or silently scoring a
// truncated prefix, either of which hides the caller's bug).
func Cosine(a, b Vector) float64 {
	if len(a) != len(b) {
		return 0
	}
	dot, na, nb := dotNormF32(a, b)
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// commonPrefix clamps a and b to their shared length.
func commonPrefix(a, b Vector) (Vector, Vector) {
	if len(b) < len(a) {
		a = a[:len(b)]
	} else if len(a) < len(b) {
		b = b[:len(a)]
	}
	return a, b
}

// Dot returns the inner product of a and b over their common prefix
// (missing trailing dimensions contribute nothing).
func Dot(a, b Vector) float64 {
	a, b = commonPrefix(a, b)
	return dotF32(a, b)
}

// L2 returns the Euclidean distance between a and b over their common
// prefix (missing trailing dimensions contribute nothing).
func L2(a, b Vector) float64 {
	a, b = commonPrefix(a, b)
	return math.Sqrt(sqL2F32(a, b))
}

// SqL2 returns the squared Euclidean distance between a and b over their
// common prefix. It is the kernel behind L2, exported for scans (IVF
// assignment, PQ codebooks) that compare many distances and never need
// the square root.
func SqL2(a, b Vector) float64 {
	a, b = commonPrefix(a, b)
	return sqL2F32(a, b)
}

// Norm returns the L2 norm of v.
func Norm(v Vector) float64 {
	return math.Sqrt(dotF32(v, v))
}

// normalize scales v to unit L2 norm in place; the zero vector is unchanged.
func normalize(v Vector) {
	n := Norm(v)
	if n == 0 {
		return
	}
	inv := float32(1 / n)
	for i := range v {
		v[i] *= inv
	}
}
