// Package embed produces deterministic vector embeddings for text, tabular
// and image-descriptor data.
//
// The embedder is a hashed bag-of-n-grams model: every word token and every
// character trigram of the input is hashed into a fixed-dimensional vector
// with a signed FNV hash, and the result is L2-normalized. This is the
// classic "hashing trick" feature map; it is deterministic, allocation-light
// and — crucially for this reproduction — semantically meaningful enough that
// similar queries land near each other, which is what the paper's prompt
// store (III-A), semantic cache (III-C) and multi-modal data lake (II-D)
// all rely on.
package embed

import (
	"hash/fnv"
	"math"
	"strconv"
	"strings"

	"repro/internal/token"
)

// DefaultDim is the embedding dimensionality used across the repository when
// callers do not request a specific size.
const DefaultDim = 128

// Vector is a dense embedding.
type Vector []float32

// Embedder maps data of several modalities into one shared vector space.
type Embedder struct {
	dim int
	tok token.Tokenizer
}

// New returns an Embedder producing vectors of the given dimensionality.
// It panics if dim <= 0, since a zero-dimensional space is always a bug.
func New(dim int) *Embedder {
	if dim <= 0 {
		panic("embed: non-positive dimension")
	}
	return &Embedder{dim: dim}
}

// Dim reports the embedding dimensionality.
func (e *Embedder) Dim() int { return e.dim }

// Text embeds a natural-language string.
func (e *Embedder) Text(s string) Vector {
	v := make(Vector, e.dim)
	for _, t := range e.tok.Tokenize(s) {
		addHashed(v, "w:"+t, 1)
	}
	for _, g := range charTrigrams(s) {
		addHashed(v, "g:"+g, 0.5)
	}
	normalize(v)
	return v
}

// Row embeds one table row given its column names and stringified values.
// The attribute names are folded in so that rows from tables with the same
// values but different schemas do not collapse to one point.
func (e *Embedder) Row(cols, vals []string) Vector {
	v := make(Vector, e.dim)
	for i, c := range cols {
		addHashed(v, "c:"+strings.ToLower(c), 0.75)
		if i < len(vals) {
			for _, t := range e.tok.Tokenize(vals[i]) {
				addHashed(v, "v:"+strings.ToLower(c)+"="+t, 1)
				addHashed(v, "w:"+t, 0.5)
			}
		}
	}
	normalize(v)
	return v
}

// Column embeds a table column given its name and a sample of values.
func (e *Embedder) Column(name string, sample []string) Vector {
	v := make(Vector, e.dim)
	addHashed(v, "c:"+strings.ToLower(name), 2)
	for _, s := range sample {
		for _, t := range e.tok.Tokenize(s) {
			addHashed(v, "w:"+t, 1)
		}
	}
	normalize(v)
	return v
}

// Image embeds an image stand-in. Offline reproduction has no pixel data, so
// images are represented by caption text plus a compact feature descriptor
// (e.g. dominant colors, detected object tags); both contribute to the
// embedding so that caption-similar and feature-similar images are close.
func (e *Embedder) Image(caption string, features []float64) Vector {
	v := make(Vector, e.dim)
	for _, t := range e.tok.Tokenize(caption) {
		addHashed(v, "w:"+t, 1)
	}
	for i, f := range features {
		addHashed(v, "f:"+strconv.Itoa(i), float32(f))
	}
	normalize(v)
	return v
}

// Cosine returns the cosine similarity of two vectors of equal length.
// Because Embedder output is L2-normalized, this equals the dot product for
// embedder-produced vectors, but Cosine stays correct for raw vectors too.
func Cosine(a, b Vector) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Dot returns the inner product of two vectors of equal length.
func Dot(a, b Vector) float64 {
	var dot float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
	}
	return dot
}

// L2 returns the Euclidean distance between two vectors of equal length.
func L2(a, b Vector) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// Norm returns the L2 norm of v.
func Norm(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s)
}

// addHashed folds feature key into v at a hashed position with a hashed sign.
func addHashed(v Vector, key string, w float32) {
	h := fnv.New64a()
	h.Write([]byte(key))
	sum := h.Sum64()
	idx := int(sum % uint64(len(v)))
	if (sum>>63)&1 == 1 {
		w = -w
	}
	v[idx] += w
}

// normalize scales v to unit L2 norm in place; the zero vector is unchanged.
func normalize(v Vector) {
	n := Norm(v)
	if n == 0 {
		return
	}
	inv := float32(1 / n)
	for i := range v {
		v[i] *= inv
	}
}

// charTrigrams returns the character trigrams of the lowercased input with
// spaces collapsed. Short strings yield nothing.
func charTrigrams(s string) []string {
	s = strings.ToLower(strings.Join(strings.Fields(s), " "))
	r := []rune(s)
	if len(r) < 3 {
		return nil
	}
	out := make([]string, 0, len(r)-2)
	for i := 0; i+3 <= len(r); i++ {
		out = append(out, string(r[i:i+3]))
	}
	return out
}
