//go:build !amd64

package embed

// Non-amd64 architectures use the portable unrolled kernels.

func dotArch(a, b []float32) (float64, bool)  { return 0, false }
func sqL2Arch(a, b []float32) (float64, bool) { return 0, false }
func dotInt8Arch(a, b []int8) (int32, bool)   { return 0, false }
