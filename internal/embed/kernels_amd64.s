// AVX2+FMA distance kernels. Callers (kernels_amd64.go) guarantee:
//   - dotAVX2 / sqL2AVX2: n is a multiple of 8, n >= 8
//   - dotInt8AVX2:        n is a multiple of 16, n >= 16
// and that AVX2+FMA were detected before any kernel is invoked.
// Four independent accumulators per kernel keep the FMA pipeline full;
// the remainder under one unrolled stride runs in a narrow loop.

#include "textflag.h"

// func cpuidAsm(leaf, sub uint32) (ax, bx, cx, dx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, ax+8(FP)
	MOVL BX, bx+12(FP)
	MOVL CX, cx+16(FP)
	MOVL DX, dx+20(FP)
	RET

// func xgetbvAsm() (ax, dx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, ax+0(FP)
	MOVL DX, dx+4(FP)
	RET

// func dotAVX2(a, b *float32, n int) float32
TEXT ·dotAVX2(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-32, DX
	CMPQ DX, $0
	JE   dot_tail
dot_loop32:
	VMOVUPS (SI)(AX*4), Y4
	VMOVUPS 32(SI)(AX*4), Y5
	VMOVUPS 64(SI)(AX*4), Y6
	VMOVUPS 96(SI)(AX*4), Y7
	VMOVUPS (DI)(AX*4), Y8
	VMOVUPS 32(DI)(AX*4), Y9
	VMOVUPS 64(DI)(AX*4), Y10
	VMOVUPS 96(DI)(AX*4), Y11
	VFMADD231PS Y8, Y4, Y0
	VFMADD231PS Y9, Y5, Y1
	VFMADD231PS Y10, Y6, Y2
	VFMADD231PS Y11, Y7, Y3
	ADDQ $32, AX
	CMPQ AX, DX
	JL   dot_loop32
dot_tail:
	CMPQ AX, CX
	JGE  dot_reduce
dot_loop8:
	VMOVUPS (SI)(AX*4), Y4
	VMOVUPS (DI)(AX*4), Y8
	VFMADD231PS Y8, Y4, Y0
	ADDQ $8, AX
	CMPQ AX, CX
	JL   dot_loop8
dot_reduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func sqL2AVX2(a, b *float32, n int) float32
TEXT ·sqL2AVX2(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-32, DX
	CMPQ DX, $0
	JE   sq_tail
sq_loop32:
	VMOVUPS (SI)(AX*4), Y4
	VMOVUPS 32(SI)(AX*4), Y5
	VMOVUPS 64(SI)(AX*4), Y6
	VMOVUPS 96(SI)(AX*4), Y7
	VSUBPS (DI)(AX*4), Y4, Y4
	VSUBPS 32(DI)(AX*4), Y5, Y5
	VSUBPS 64(DI)(AX*4), Y6, Y6
	VSUBPS 96(DI)(AX*4), Y7, Y7
	VFMADD231PS Y4, Y4, Y0
	VFMADD231PS Y5, Y5, Y1
	VFMADD231PS Y6, Y6, Y2
	VFMADD231PS Y7, Y7, Y3
	ADDQ $32, AX
	CMPQ AX, DX
	JL   sq_loop32
sq_tail:
	CMPQ AX, CX
	JGE  sq_reduce
sq_loop8:
	VMOVUPS (SI)(AX*4), Y4
	VSUBPS (DI)(AX*4), Y4, Y4
	VFMADD231PS Y4, Y4, Y0
	ADDQ $8, AX
	CMPQ AX, CX
	JL   sq_loop8
sq_reduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func dotInt8AVX2(a, b *int8, n int) int32
// Widens int8 to int16 (VPMOVSXBW), multiply-accumulates int16 pairs into
// int32 lanes (VPMADDWD): 127*127*2 per lane per step fits int16-pair
// products comfortably in int32.
TEXT ·dotInt8AVX2(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-32, DX
	CMPQ DX, $0
	JE   i8_tail
i8_loop32:
	VPMOVSXBW (SI)(AX*1), Y2
	VPMOVSXBW 16(SI)(AX*1), Y3
	VPMOVSXBW (DI)(AX*1), Y4
	VPMOVSXBW 16(DI)(AX*1), Y5
	VPMADDWD Y4, Y2, Y2
	VPMADDWD Y5, Y3, Y3
	VPADDD Y2, Y0, Y0
	VPADDD Y3, Y1, Y1
	ADDQ $32, AX
	CMPQ AX, DX
	JL   i8_loop32
i8_tail:
	CMPQ AX, CX
	JGE  i8_reduce
i8_loop16:
	VPMOVSXBW (SI)(AX*1), Y2
	VPMOVSXBW (DI)(AX*1), Y4
	VPMADDWD Y4, Y2, Y2
	VPADDD Y2, Y0, Y0
	ADDQ $16, AX
	CMPQ AX, CX
	JL   i8_loop16
i8_reduce:
	VPADDD Y1, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VPADDD X1, X0, X0
	VPHADDD X0, X0, X0
	VPHADDD X0, X0, X0
	VMOVD X0, AX
	VZEROUPPER
	MOVL AX, ret+24(FP)
	RET
