//go:build !race

package embed

const raceEnabled = false
