package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTextDeterministic(t *testing.T) {
	e := New(DefaultDim)
	a := e.Text("show the names of stadiums")
	b := e.Text("show the names of stadiums")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("embedding not deterministic at dim %d", i)
		}
	}
}

func TestTextNormalized(t *testing.T) {
	e := New(64)
	v := e.Text("hello world")
	if n := Norm(v); math.Abs(n-1) > 1e-5 {
		t.Errorf("norm = %v, want 1", n)
	}
}

func TestEmptyTextIsZero(t *testing.T) {
	e := New(32)
	v := e.Text("")
	if Norm(v) != 0 {
		t.Errorf("empty text embedding should be zero, norm %v", Norm(v))
	}
}

func TestSimilarTextsCloserThanDissimilar(t *testing.T) {
	e := New(DefaultDim)
	q := e.Text("What are the names of stadiums that had concerts in 2014?")
	near := e.Text("Show the names of stadiums that had concerts in 2014")
	far := e.Text("predict the execution time of this analytical join query")
	if Cosine(q, near) <= Cosine(q, far) {
		t.Errorf("similar pair %.3f not closer than dissimilar %.3f",
			Cosine(q, near), Cosine(q, far))
	}
}

func TestRowSchemaSensitivity(t *testing.T) {
	e := New(DefaultDim)
	a := e.Row([]string{"name", "city"}, []string{"Anfield", "Liverpool"})
	b := e.Row([]string{"player", "team"}, []string{"Anfield", "Liverpool"})
	if Cosine(a, b) > 0.999 {
		t.Errorf("rows with different schemas collapse: cos=%v", Cosine(a, b))
	}
}

func TestColumnEmbedding(t *testing.T) {
	e := New(DefaultDim)
	c1 := e.Column("country", []string{"USA", "UK", "France"})
	c2 := e.Column("nation", []string{"USA", "UK", "Germany"})
	c3 := e.Column("salary", []string{"52000", "61000", "48000"})
	if Cosine(c1, c2) <= Cosine(c1, c3) {
		t.Errorf("country/nation %.3f should exceed country/salary %.3f",
			Cosine(c1, c2), Cosine(c1, c3))
	}
}

func TestImageEmbedding(t *testing.T) {
	e := New(DefaultDim)
	a := e.Image("chest x-ray of patient", []float64{0.2, 0.9})
	b := e.Image("chest x-ray scan", []float64{0.21, 0.88})
	c := e.Image("stadium aerial photo", []float64{0.9, 0.1})
	if Cosine(a, b) <= Cosine(a, c) {
		t.Errorf("similar images %.3f not closer than dissimilar %.3f",
			Cosine(a, b), Cosine(a, c))
	}
}

func TestCosineBounds(t *testing.T) {
	e := New(48)
	f := func(s1, s2 string) bool {
		a, b := e.Text(s1), e.Text(s2)
		c := Cosine(a, b)
		return c >= -1.0001 && c <= 1.0001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCosineSelf(t *testing.T) {
	e := New(48)
	v := e.Text("semantic cache lookup")
	if c := Cosine(v, v); math.Abs(c-1) > 1e-5 {
		t.Errorf("Cosine(v,v) = %v, want 1", c)
	}
}

func TestL2AndDotConsistent(t *testing.T) {
	a := Vector{1, 0, 0}
	b := Vector{0, 1, 0}
	if d := L2(a, b); math.Abs(d-math.Sqrt2) > 1e-9 {
		t.Errorf("L2 = %v, want sqrt(2)", d)
	}
	if d := Dot(a, b); d != 0 {
		t.Errorf("Dot = %v, want 0", d)
	}
}

func TestNewPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func BenchmarkText(b *testing.B) {
	e := New(DefaultDim)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Text("What are the names of stadiums that had concerts in 2014 or sports meetings in 2015?")
	}
}
