package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTextDeterministic(t *testing.T) {
	e := New(DefaultDim)
	a := e.Text("show the names of stadiums")
	b := e.Text("show the names of stadiums")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("embedding not deterministic at dim %d", i)
		}
	}
}

func TestTextNormalized(t *testing.T) {
	e := New(64)
	v := e.Text("hello world")
	if n := Norm(v); math.Abs(n-1) > 1e-5 {
		t.Errorf("norm = %v, want 1", n)
	}
}

func TestEmptyTextIsZero(t *testing.T) {
	e := New(32)
	v := e.Text("")
	if Norm(v) != 0 {
		t.Errorf("empty text embedding should be zero, norm %v", Norm(v))
	}
}

func TestSimilarTextsCloserThanDissimilar(t *testing.T) {
	e := New(DefaultDim)
	q := e.Text("What are the names of stadiums that had concerts in 2014?")
	near := e.Text("Show the names of stadiums that had concerts in 2014")
	far := e.Text("predict the execution time of this analytical join query")
	if Cosine(q, near) <= Cosine(q, far) {
		t.Errorf("similar pair %.3f not closer than dissimilar %.3f",
			Cosine(q, near), Cosine(q, far))
	}
}

func TestRowSchemaSensitivity(t *testing.T) {
	e := New(DefaultDim)
	a := e.Row([]string{"name", "city"}, []string{"Anfield", "Liverpool"})
	b := e.Row([]string{"player", "team"}, []string{"Anfield", "Liverpool"})
	if Cosine(a, b) > 0.999 {
		t.Errorf("rows with different schemas collapse: cos=%v", Cosine(a, b))
	}
}

func TestColumnEmbedding(t *testing.T) {
	e := New(DefaultDim)
	c1 := e.Column("country", []string{"USA", "UK", "France"})
	c2 := e.Column("nation", []string{"USA", "UK", "Germany"})
	c3 := e.Column("salary", []string{"52000", "61000", "48000"})
	if Cosine(c1, c2) <= Cosine(c1, c3) {
		t.Errorf("country/nation %.3f should exceed country/salary %.3f",
			Cosine(c1, c2), Cosine(c1, c3))
	}
}

func TestImageEmbedding(t *testing.T) {
	e := New(DefaultDim)
	a := e.Image("chest x-ray of patient", []float64{0.2, 0.9})
	b := e.Image("chest x-ray scan", []float64{0.21, 0.88})
	c := e.Image("stadium aerial photo", []float64{0.9, 0.1})
	if Cosine(a, b) <= Cosine(a, c) {
		t.Errorf("similar images %.3f not closer than dissimilar %.3f",
			Cosine(a, b), Cosine(a, c))
	}
}

func TestCosineBounds(t *testing.T) {
	e := New(48)
	f := func(s1, s2 string) bool {
		a, b := e.Text(s1), e.Text(s2)
		c := Cosine(a, b)
		return c >= -1.0001 && c <= 1.0001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCosineSelf(t *testing.T) {
	e := New(48)
	v := e.Text("semantic cache lookup")
	if c := Cosine(v, v); math.Abs(c-1) > 1e-5 {
		t.Errorf("Cosine(v,v) = %v, want 1", c)
	}
}

func TestL2AndDotConsistent(t *testing.T) {
	a := Vector{1, 0, 0}
	b := Vector{0, 1, 0}
	if d := L2(a, b); math.Abs(d-math.Sqrt2) > 1e-9 {
		t.Errorf("L2 = %v, want sqrt(2)", d)
	}
	if d := Dot(a, b); d != 0 {
		t.Errorf("Dot = %v, want 0", d)
	}
}

func TestNewPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

// Regression: Cosine on mismatched lengths used to index past the shorter
// vector and panic. The documented behavior is now similarity 0.
func TestCosineMismatchedLengths(t *testing.T) {
	a := Vector{1, 0, 0}
	b := Vector{1, 0}
	if c := Cosine(a, b); c != 0 {
		t.Errorf("Cosine(len 3, len 2) = %v, want 0", c)
	}
	if c := Cosine(b, a); c != 0 {
		t.Errorf("Cosine(len 2, len 3) = %v, want 0", c)
	}
	if c := Cosine(nil, Vector{1}); c != 0 {
		t.Errorf("Cosine(nil, len 1) = %v, want 0", c)
	}
	if c := Cosine(nil, nil); c != 0 {
		t.Errorf("Cosine(nil, nil) = %v, want 0", c)
	}
}

func TestDotL2CommonPrefix(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, 5}
	if d := Dot(a, b); d != 14 {
		t.Errorf("Dot over prefix = %v, want 14", d)
	}
	if d := Dot(b, a); d != 14 {
		t.Errorf("Dot over prefix (swapped) = %v, want 14", d)
	}
	want := math.Sqrt(9 + 9)
	if d := L2(a, b); math.Abs(d-want) > 1e-9 {
		t.Errorf("L2 over prefix = %v, want %v", d, want)
	}
	if d := SqL2(b, a); math.Abs(d-18) > 1e-9 {
		t.Errorf("SqL2 over prefix = %v, want 18", d)
	}
}

func TestTextIntoReusesBuffer(t *testing.T) {
	e := New(DefaultDim)
	buf := make(Vector, DefaultDim)
	got := e.TextInto(buf, "semantic cache lookup")
	if &got[0] != &buf[0] {
		t.Error("TextInto did not reuse the provided buffer")
	}
	if !vecsEqual(got, e.Text("semantic cache lookup")) {
		t.Error("TextInto output differs from Text")
	}
	// Stale contents must be cleared.
	got = e.TextInto(buf, "completely different text")
	if !vecsEqual(got, e.Text("completely different text")) {
		t.Error("TextInto with dirty buffer differs from Text")
	}
	// Undersized buffer: allocates instead of truncating.
	small := make(Vector, 3)
	got = e.TextInto(small, "hello")
	if len(got) != DefaultDim {
		t.Errorf("TextInto(small) returned len %d, want %d", len(got), DefaultDim)
	}
}

func TestTextScratchRoundTrip(t *testing.T) {
	e := New(DefaultDim)
	want := e.Text("prompt store retrieval")
	for i := 0; i < 3; i++ {
		vp := e.TextScratch("prompt store retrieval")
		if !vecsEqual(*vp, want) {
			t.Fatalf("TextScratch iteration %d differs from Text", i)
		}
		e.ReleaseScratch(vp)
	}
	// Releasing nil or a foreign, wrong-sized vector must not poison the pool.
	e.ReleaseScratch(nil)
	small := make(Vector, 3)
	e.ReleaseScratch(&small)
	if vp := e.TextScratch("after foreign release"); len(*vp) != DefaultDim {
		t.Errorf("scratch vector len %d after foreign release", len(*vp))
	} else {
		e.ReleaseScratch(vp)
	}
}

// TestTextAllocBudget pins the tentpole's allocation budget: one embedding
// must cost at most 1 allocation (the result vector) plus a small slack for
// pool refills. The race detector instruments allocations, so the budget is
// only checked in non-race builds.
func TestTextAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is inflated under -race")
	}
	e := New(DefaultDim)
	const text = "What are the names of stadiums that had concerts in 2014 or sports meetings in 2015?"
	if n := testing.AllocsPerRun(200, func() { e.Text(text) }); n > 8 {
		t.Errorf("Text allocates %v times per call, budget 8", n)
	}
	buf := make(Vector, DefaultDim)
	if n := testing.AllocsPerRun(200, func() { e.TextInto(buf, text) }); n > 0 {
		t.Errorf("TextInto allocates %v times per call, budget 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { e.ReleaseScratch(e.TextScratch(text)) }); n > 0 {
		t.Errorf("TextScratch+Release allocates %v times per call, budget 0", n)
	}
}

func TestScratchConcurrent(t *testing.T) {
	e := New(DefaultDim)
	texts := []string{"alpha beta", "gamma delta", "epsilon zeta", "eta theta"}
	wants := make([]Vector, len(texts))
	for i, s := range texts {
		wants[i] = e.Text(s)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 200; i++ {
				j := (g + i) % len(texts)
				vp := e.TextScratch(texts[j])
				ok := vecsEqual(*vp, wants[j])
				e.ReleaseScratch(vp)
				if !ok {
					done <- errInterleaved
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errInterleaved = errScratch("scratch vector corrupted by concurrent use")

type errScratch string

func (e errScratch) Error() string { return string(e) }

func BenchmarkText(b *testing.B) {
	e := New(DefaultDim)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Text("What are the names of stadiums that had concerts in 2014 or sports meetings in 2015?")
	}
}
